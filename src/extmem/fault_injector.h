#ifndef EMJOIN_EXTMEM_FAULT_INJECTOR_H_
#define EMJOIN_EXTMEM_FAULT_INJECTOR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "extmem/defs.h"

namespace emjoin::extmem {

/// Bounded-retry policy for transient device faults. Backoff is measured
/// on the virtual I/O clock: waiting out a backoff of k ticks is charged
/// as k block I/Os under the "recovery" tag (the simulator has a single
/// clock, and one tick of it is one block transfer), doubling per attempt.
struct RetryPolicy {
  std::uint32_t max_retries = 4;
  std::uint64_t backoff_base_ios = 1;

  /// Backoff charged after failed attempt `attempt` (0-based). Saturates
  /// at a 2^20 multiplier so pathological attempt counts can't shift the
  /// base out of the word.
  std::uint64_t BackoffFor(std::uint32_t attempt) const {
    return backoff_base_ios << (attempt < 20 ? attempt : 20);
  }
};

/// Adaptive-retry modes derived from observed fault rates (FaultStats).
/// The injector starts in kSteady (the configured RetryPolicy verbatim)
/// and, when FaultConfig::adaptive_retry is set, re-derives the effective
/// policy at every fault-decision draw:
///   kFailFast:   a long unbroken streak of failed draws looks like a dead
///                device — clamp retries to 1 and drop backoff so the hot
///                loop surfaces IO_ERROR quickly instead of burning the
///                virtual clock on doomed waits.
///   kPersistent: a high-but-broken fault rate looks like a flaky-but-live
///                device — double the retry budget so transient runs of
///                bad luck don't kill an otherwise-finishing query.
enum class RetryMode : std::uint8_t { kSteady = 0, kPersistent, kFailFast };

/// Short stable name ("steady", "persistent", "fail_fast").
const char* RetryModeName(RetryMode mode);

/// Seeded fault schedule. All decisions are drawn from one PRNG seeded
/// with `seed`, so a run is replayed exactly by re-running the same
/// workload with the same config — the soak harness prints the seed of
/// any failing run for that purpose.
struct FaultConfig {
  std::uint64_t seed = 0;

  /// Per-block transient failure probabilities in [0, 1].
  double read_fail = 0.0;
  double write_fail = 0.0;
  /// Probability a block write is torn: the transfer is charged, then the
  /// device's verify pass detects the tear (one recovery read) and the
  /// block is rewritten (recovery writes, themselves retryable).
  double torn_write = 0.0;

  /// Device capacity in cumulative written blocks (log-structured model);
  /// 0 = unlimited. Exceeding it is a permanent DEVICE_FULL error.
  std::uint64_t device_capacity_blocks = 0;

  /// Memory-budget shrinks. A shrink multiplies the enforced MemoryGauge
  /// limit by `shrink_factor` (never below `shrink_floor_tuples`). Shrinks
  /// take effect at planning polls (Device::PlanningBudget), the safe
  /// points where operators re-plan — mirroring how a real system honors
  /// a memory-pressure signal at its next allocation decision.
  std::vector<std::uint64_t> shrink_at_ios;  // one-shot, at first poll >= tick
  double shrink_prob = 0.0;                  // per-poll random shrink
  bool shrink_every_poll = false;            // adversarial: shrink at EVERY poll
  double shrink_factor = 0.5;
  TupleCount shrink_floor_tuples = 0;  // 0: device picks 4*B

  RetryPolicy retry;

  /// Derive the effective RetryPolicy from observed fault rates (see
  /// RetryMode). Off by default: with it off, retry() returns the
  /// configured policy verbatim and replays of pre-adaptive seeds are
  /// unchanged.
  bool adaptive_retry = false;

  /// Kill switch for kill-and-resume soaking: the first block charge at
  /// or after this virtual-I/O tick raises IO_ERROR immediately (no
  /// retries), simulating a crash mid-query. 0 = disabled.
  std::uint64_t kill_at_ios = 0;

  /// True if any fault source is active.
  bool Active() const {
    return read_fail > 0 || write_fail > 0 || torn_write > 0 ||
           device_capacity_blocks > 0 || !shrink_at_ios.empty() ||
           shrink_prob > 0 || shrink_every_poll || kill_at_ios > 0;
  }
};

/// Tallies of injected faults and recovery work, for tests and reports.
struct FaultStats {
  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t retries = 0;       // successful-or-not re-attempts
  std::uint64_t backoff_ios = 0;   // virtual-clock ticks spent backing off
  std::uint64_t shrinks = 0;       // budget shrinks applied
  std::uint64_t exhaustions = 0;   // retry budgets exhausted (errors raised)

  std::uint64_t TotalFaults() const {
    return read_faults + write_faults + torn_writes;
  }

  std::uint64_t TotalActivity() const {
    return TotalFaults() + retries + backoff_ios + shrinks + exhaustions;
  }

  bool operator==(const FaultStats&) const = default;
};

/// Field-wise sum, for rolling span deltas up into trace totals.
inline FaultStats operator+(const FaultStats& a, const FaultStats& b) {
  return FaultStats{a.read_faults + b.read_faults,
                    a.write_faults + b.write_faults,
                    a.torn_writes + b.torn_writes,
                    a.retries + b.retries,
                    a.backoff_ios + b.backoff_ios,
                    a.shrinks + b.shrinks,
                    a.exhaustions + b.exhaustions};
}

/// Field-wise delta, for before/after snapshots (spans, collectors).
/// Saturates at zero: merged shard deltas can legitimately present a
/// subtrahend larger than the minuend field-by-field (shards merge in
/// shard order, not in fault order), and an underflowed 2^64-ish counter
/// would poison every roll-up downstream.
inline FaultStats operator-(const FaultStats& a, const FaultStats& b) {
  const auto sub = [](std::uint64_t x, std::uint64_t y) {
    return x > y ? x - y : 0;
  };
  return FaultStats{sub(a.read_faults, b.read_faults),
                    sub(a.write_faults, b.write_faults),
                    sub(a.torn_writes, b.torn_writes),
                    sub(a.retries, b.retries),
                    sub(a.backoff_ios, b.backoff_ios),
                    sub(a.shrinks, b.shrinks),
                    sub(a.exhaustions, b.exhaustions)};
}

/// Deterministic, seeded fault source for a Device. The device consults
/// it at every block charge (read/write) and at every planning poll; the
/// injector only makes decisions and keeps tallies — all charging and
/// error raising stays in the device, so the cost model has a single
/// owner. Attach with Device::set_fault_injector; detached devices run
/// the unchanged fault-free fast path.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config)
      : config_(config), rng_(config.seed) {
    // Scheduled ticks are consumed in order; sort so "fires at the first
    // poll at-or-after its tick" holds for any caller-supplied list.
    std::sort(config_.shrink_at_ios.begin(), config_.shrink_at_ios.end());
    effective_ = config_.retry;
  }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultConfig& config() const { return config_; }

  /// The policy the device should apply right now. With adaptive retry
  /// off this is the configured policy verbatim; with it on it is the
  /// policy derived for the current RetryMode. Device retry loops
  /// re-fetch this each attempt, so a mode flip lands mid-loop.
  const RetryPolicy& retry() const {
    return config_.adaptive_retry ? effective_ : config_.retry;
  }

  RetryMode retry_mode() const { return mode_; }
  std::uint64_t mode_transitions() const { return mode_transitions_; }

  /// True exactly once per mode transition: the device drains it to emit
  /// the kRetryModeChange event / metrics without the injector needing a
  /// device back-pointer.
  bool TakeModeChange(RetryMode* now, RetryMode* before) {
    if (!mode_changed_) return false;
    mode_changed_ = false;
    *now = mode_;
    *before = prev_mode_;
    return true;
  }

  /// Decision points (one PRNG draw each; order of calls defines the
  /// schedule, so identical workloads replay identically).
  bool NextReadFails() { return Draw(config_.read_fail, &stats_.read_faults); }
  bool NextWriteFails() {
    return Draw(config_.write_fail, &stats_.write_faults);
  }
  bool NextWriteTorn() { return Draw(config_.torn_write, &stats_.torn_writes); }

  /// Kill-switch check, consulted before any fault draw so a kill run
  /// perturbs no PRNG state. Fires at most once, at the first charge at
  /// or after `kill_at_ios` on the virtual clock — or at the first
  /// charge after RequestKill(), whichever comes first.
  bool NextKill(std::uint64_t clock_ios) {
    if (killed_) return false;
    if (async_kill_.load(std::memory_order_acquire)) {
      killed_ = true;
      return true;
    }
    if (config_.kill_at_ios == 0) return false;
    if (clock_ios < config_.kill_at_ios) return false;
    killed_ = true;
    return true;
  }

  /// Asynchronous kill request, safe to call from any thread: the next
  /// kill check observes it and raises the crash regardless of
  /// kill_at_ios. This is the live "evict this query" path of the
  /// emjoin_serve daemon; the scheduled kill_at_ios stays the
  /// deterministic replay mechanism (soak harness, CI). A query doing
  /// pure host-side work between charges dies at its next block charge.
  void RequestKill() { async_kill_.store(true, std::memory_order_release); }

  /// True once a kill — scheduled or requested — has fired. Read on the
  /// owning (device) thread to classify the resulting kIoError.
  bool killed() const { return killed_; }

  /// Budget shrink decision at a planning poll with the virtual clock at
  /// `clock_ios` and the gauge limit at `current`. Returns the new
  /// (smaller) limit to enforce, or nullopt for no shrink. `floor` is the
  /// resolved shrink floor in tuples.
  std::optional<TupleCount> NextShrink(std::uint64_t clock_ios,
                                       TupleCount current, TupleCount floor);

  /// Tallies updated by the device's recovery paths.
  void CountRetry(std::uint64_t backoff) {
    ++stats_.retries;
    stats_.backoff_ios += backoff;
  }
  void CountExhaustion() { ++stats_.exhaustions; }

  const FaultStats& stats() const { return stats_; }

  /// "seed=42 faults=17 retries=12 shrinks=2" — for error messages and
  /// soak-harness replay lines.
  std::string Describe() const;

 private:
  bool Draw(double p, std::uint64_t* counter) {
    if (p <= 0.0) return false;
    const bool hit = dist_(rng_) < p;
    if (hit) ++(*counter);
    if (config_.adaptive_retry) Observe(hit);
    return hit;
  }

  /// Feed one fault-decision outcome into the adaptive model and
  /// re-derive the effective policy when the mode flips.
  void Observe(bool faulted);
  void SetMode(RetryMode mode);

  FaultConfig config_;
  // lint: allow(determinism) — seeded from FaultConfig::seed in the ctor;
  // default construction here is overwritten before any draw.
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  FaultStats stats_;
  std::size_t next_scheduled_shrink_ = 0;

  // Adaptive-retry state (all unused when !config_.adaptive_retry).
  RetryPolicy effective_ = {};
  RetryMode mode_ = RetryMode::kSteady;
  RetryMode prev_mode_ = RetryMode::kSteady;
  bool mode_changed_ = false;
  std::uint64_t draws_ = 0;    // fault decisions observed
  std::uint64_t streak_ = 0;   // consecutive failed decisions
  std::uint64_t mode_transitions_ = 0;

  bool killed_ = false;  // a kill (scheduled or requested) fired
  // Lock-free: RequestKill() (any thread) release-stores it; NextKill
  // on the owning device thread acquire-loads it. The injector's only
  // cross-thread member — everything else is device-thread-confined.
  std::atomic<bool> async_kill_ LOCK_FREE_ATOMIC{false};  // RequestKill() pending
};

}  // namespace emjoin::extmem

#endif  // EMJOIN_EXTMEM_FAULT_INJECTOR_H_
