#ifndef EMJOIN_EXTMEM_IO_STATS_H_
#define EMJOIN_EXTMEM_IO_STATS_H_

#include <cstdint>
#include <string>

namespace emjoin::extmem {

/// Counters for block transfers in the external-memory model.
///
/// One "I/O" is the transfer of one block of B tuples between disk and
/// memory (Aggarwal–Vitter model). The simulated device charges these
/// counters on every transfer; algorithms never touch them directly.
struct IoStats {
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;

  std::uint64_t total() const { return block_reads + block_writes; }

  IoStats& operator+=(const IoStats& other) {
    block_reads += other.block_reads;
    block_writes += other.block_writes;
    return *this;
  }

  IoStats operator+(const IoStats& other) const {
    IoStats s = *this;
    s += other;
    return s;
  }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.block_reads = block_reads - other.block_reads;
    d.block_writes = block_writes - other.block_writes;
    return d;
  }

  bool operator==(const IoStats& other) const = default;

  std::string ToString() const;
};

/// Sum of a range of IoStats, or of the mapped values of a per-tag
/// breakdown (any range of pairs whose second member is IoStats).
template <typename Range>
IoStats Total(const Range& range) {
  IoStats sum;
  for (const auto& entry : range) {
    if constexpr (requires { entry.second; }) {
      sum += entry.second;
    } else {
      sum += entry;
    }
  }
  return sum;
}

}  // namespace emjoin::extmem

#endif  // EMJOIN_EXTMEM_IO_STATS_H_
