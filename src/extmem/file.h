#ifndef EMJOIN_EXTMEM_FILE_H_
#define EMJOIN_EXTMEM_FILE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "extmem/defs.h"
#include "extmem/device.h"

namespace emjoin::extmem {

/// A disk-resident sequence of fixed-width tuples.
///
/// Storage is RAM-backed; all I/O charging is done by `FileReader` /
/// `FileWriter` (sequential, block-buffered) or by explicit
/// `Device::Charge*` calls for bulk transfers. Code outside this component
/// must never touch `RawTuple` without going through a reader, except for
/// oracle/test code that is explicitly exempt from the cost model.
class DiskFile {
 public:
  DiskFile(Device* device, std::uint32_t width)
      : device_(device), width_(width) {
    assert(width > 0);
  }

  DiskFile(const DiskFile&) = delete;
  DiskFile& operator=(const DiskFile&) = delete;

  Device* device() const { return device_; }

  /// Values per tuple.
  std::uint32_t width() const { return width_; }

  /// Number of tuples in the file.
  TupleCount size() const { return data_.size() / width_; }

  /// Uncharged access to tuple `i` (readers charge I/O themselves).
  const Value* RawTuple(TupleCount i) const {
    assert(i < size());
    return data_.data() + i * width_;
  }

  /// Uncharged append of one tuple (writers charge I/O themselves).
  void AppendRaw(std::span<const Value> tuple) {
    assert(tuple.size() == width_);
    data_.insert(data_.end(), tuple.begin(), tuple.end());
  }

  /// Uncharged in-place whole-file sort hook used by the external sorter
  /// for single-run inputs that fit in memory.
  std::vector<Value>& MutableData() { return data_; }

 private:
  Device* device_;
  std::uint32_t width_;
  std::vector<Value> data_;
};

using FilePtr = std::shared_ptr<DiskFile>;

/// A contiguous range [begin, end) of tuples within a file. This is the
/// unit all operators work on: after sorting by an attribute, the tuples
/// matching one value (or one value range) form a FileRange, which can be
/// handed to a sub-operator without copying (the paper's `R(e')|v=a`).
struct FileRange {
  FilePtr file;
  TupleCount begin = 0;
  TupleCount end = 0;

  FileRange() = default;
  FileRange(FilePtr f, TupleCount b, TupleCount e)
      : file(std::move(f)), begin(b), end(e) {}

  /// Whole-file range.
  explicit FileRange(FilePtr f) : file(std::move(f)) {
    end = file->size();
  }

  TupleCount size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  std::uint32_t width() const { return file->width(); }

  FileRange Sub(TupleCount b, TupleCount e) const {
    assert(begin + e <= end && b <= e);
    return FileRange(file, begin + b, begin + e);
  }

  /// Uncharged access relative to the range start.
  const Value* RawTuple(TupleCount i) const {
    return file->RawTuple(begin + i);
  }
};

/// Sequential, block-buffered reader over a FileRange. Charges one block
/// read each time the cursor enters a block it has not yet read.
class FileReader {
 public:
  explicit FileReader(FileRange range)
      : range_(std::move(range)),
        pos_(range_.begin),
        last_block_(~std::uint64_t{0}) {}

  bool Done() const { return pos_ >= range_.end; }

  /// Returns the next tuple and advances. Charges I/O on block boundaries.
  const Value* Next() {
    assert(!Done());
    ChargeIfNewBlock();
    const Value* t = range_.file->RawTuple(pos_);
    ++pos_;
    return t;
  }

  /// Peeks at the next tuple without advancing (still charges the block,
  /// since the block must be resident to inspect it).
  const Value* Peek() {
    assert(!Done());
    ChargeIfNewBlock();
    return range_.file->RawTuple(pos_);
  }

  /// Tuples remaining.
  TupleCount Remaining() const { return range_.end - pos_; }

  /// Absolute position in the underlying file.
  TupleCount position() const { return pos_; }

 private:
  void ChargeIfNewBlock() {
    const std::uint64_t block = pos_ / range_.file->device()->B();
    if (block != last_block_) {
      range_.file->device()->ChargeReadBlocks(1);
      last_block_ = block;
    }
  }

  FileRange range_;
  TupleCount pos_;
  std::uint64_t last_block_;
};

/// Sequential, block-buffered writer appending to a DiskFile. Charges one
/// block write per B tuples appended (plus one for a trailing partial
/// block at Finish()).
class FileWriter {
 public:
  explicit FileWriter(FilePtr file) : file_(std::move(file)) {}

  ~FileWriter() { Finish(); }

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  void Append(std::span<const Value> tuple) {
    file_->AppendRaw(tuple);
    ++buffered_;
    if (buffered_ == file_->device()->B()) {
      file_->device()->ChargeWriteBlocks(1);
      buffered_ = 0;
    }
  }

  /// Flushes the trailing partial block. Idempotent.
  void Finish() {
    if (buffered_ > 0) {
      file_->device()->ChargeWriteBlocks(1);
      buffered_ = 0;
    }
  }

  const FilePtr& file() const { return file_; }

 private:
  FilePtr file_;
  TupleCount buffered_ = 0;
};

}  // namespace emjoin::extmem

#endif  // EMJOIN_EXTMEM_FILE_H_
