#ifndef EMJOIN_EXTMEM_FILE_H_
#define EMJOIN_EXTMEM_FILE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "extmem/defs.h"
#include "extmem/device.h"
#include "extmem/status.h"

namespace emjoin::extmem {

/// A disk-resident sequence of fixed-width tuples.
///
/// Storage is RAM-backed; all I/O charging is done by `FileReader` /
/// `FileWriter` (sequential, block-buffered) or by explicit
/// `Device::Charge*` calls for bulk transfers. Code outside this component
/// must never touch `RawTuple` without going through a reader, except for
/// oracle/test code that is explicitly exempt from the cost model.
class DiskFile {
 public:
  DiskFile(Device* device, std::uint32_t width)
      : device_(device), width_(width) {
    assert(width > 0);
  }

  DiskFile(const DiskFile&) = delete;
  DiskFile& operator=(const DiskFile&) = delete;

  [[nodiscard]] Device* device() const { return device_; }

  /// Values per tuple.
  [[nodiscard]] std::uint32_t width() const { return width_; }

  /// Number of tuples in the file.
  [[nodiscard]] TupleCount size() const { return data_.size() / width_; }

  /// Uncharged access to tuple `i` (readers charge I/O themselves).
  [[nodiscard]] const Value* RawTuple(TupleCount i) const {
    assert(i < size());
    return data_.data() + i * width_;
  }

  /// Uncharged append of one tuple (writers charge I/O themselves).
  void AppendRaw(std::span<const Value> tuple) {
    assert(tuple.size() == width_);
    data_.insert(data_.end(), tuple.begin(), tuple.end());
  }

  /// Uncharged bulk append of whole tuples (writers charge I/O themselves).
  void AppendRawBulk(std::span<const Value> tuples) {
    assert(tuples.size() % width_ == 0);
    data_.insert(data_.end(), tuples.begin(), tuples.end());
  }

  /// Uncharged in-place whole-file sort hook used by the external sorter
  /// for single-run inputs that fit in memory.
  std::vector<Value>& MutableData() { return data_; }

  /// Pre-sizes the backing store for `tuples` more tuples. Purely a
  /// wall-clock hint (avoids vector regrowth); never affects charging.
  void Reserve(TupleCount tuples) {
    data_.reserve(data_.size() + tuples * width_);
  }

 private:
  Device* device_;
  std::uint32_t width_;
  std::vector<Value> data_;
};

using FilePtr = std::shared_ptr<DiskFile>;

/// A contiguous range [begin, end) of tuples within a file. This is the
/// unit all operators work on: after sorting by an attribute, the tuples
/// matching one value (or one value range) form a FileRange, which can be
/// handed to a sub-operator without copying (the paper's `R(e')|v=a`).
struct FileRange {
  FilePtr file;
  TupleCount begin = 0;
  TupleCount end = 0;

  FileRange() = default;
  FileRange(FilePtr f, TupleCount b, TupleCount e)
      : file(std::move(f)), begin(b), end(e) {}

  /// Whole-file range.
  explicit FileRange(FilePtr f) : file(std::move(f)) {
    end = file->size();
  }

  [[nodiscard]] TupleCount size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin >= end; }
  [[nodiscard]] std::uint32_t width() const { return file->width(); }

  [[nodiscard]] FileRange Sub(TupleCount b, TupleCount e) const {
    assert(begin + e <= end && b <= e);
    return FileRange(file, begin + b, begin + e);
  }

  /// Uncharged access relative to the range start.
  [[nodiscard]] const Value* RawTuple(TupleCount i) const {
    return file->RawTuple(begin + i);
  }
};

/// Sequential, block-buffered reader over a FileRange. Charges one block
/// read each time the cursor enters a block it has not yet read.
///
/// lint: tagged-by-caller — the operator that opens the reader owns the
/// I/O attribution tag; charges here land on whatever ScopedIoTag is
/// active at the call site.
class FileReader {
 public:
  explicit FileReader(FileRange range)
      : range_(std::move(range)),
        pos_(range_.begin),
        last_block_(~std::uint64_t{0}) {}

  [[nodiscard]] bool Done() const { return pos_ >= range_.end; }

  /// Returns the next tuple and advances. Charges I/O on block boundaries.
  const Value* Next() {
    assert(!Done());
    ChargeIfNewBlock();
    const Value* t = range_.file->RawTuple(pos_);
    ++pos_;
    return t;
  }

  /// Peeks at the next tuple without advancing (still charges the block,
  /// since the block must be resident to inspect it).
  const Value* Peek() {
    assert(!Done());
    ChargeIfNewBlock();
    return range_.file->RawTuple(pos_);
  }

  /// Returns the maximal run of tuples from the cursor to the end of the
  /// current device block (clipped to the range end and to `max_tuples`)
  /// and advances past it. Charges exactly what tuple-at-a-time Next()
  /// calls over the same positions would: one block read when the cursor
  /// enters a block it has not yet read, nothing for the rest of the
  /// block. The span aliases the file's storage and is invalidated by any
  /// append to the same file.
  std::span<const Value> NextBlock(TupleCount max_tuples = ~TupleCount{0}) {
    assert(!Done());
    ChargeIfNewBlock();
    const TupleCount b = range_.file->device()->B();
    const TupleCount block_end = (pos_ / b + 1) * b;
    TupleCount end = std::min<TupleCount>(block_end, range_.end);
    if (end - pos_ > max_tuples) end = pos_ + max_tuples;
    const Value* base = range_.file->RawTuple(pos_);
    const std::size_t tuples = static_cast<std::size_t>(end - pos_);
    pos_ = end;
    return {base, tuples * range_.file->width()};
  }

  /// Tuples remaining.
  [[nodiscard]] TupleCount Remaining() const { return range_.end - pos_; }

  /// Absolute position in the underlying file.
  [[nodiscard]] TupleCount position() const { return pos_; }

  /// Values per tuple of the underlying file.
  [[nodiscard]] std::uint32_t width() const { return range_.file->width(); }

 private:
  void ChargeIfNewBlock() {
    const std::uint64_t block = pos_ / range_.file->device()->B();
    if (block != last_block_) {
      range_.file->device()->ChargeReadBlocks(1);
      last_block_ = block;
    }
  }

  FileRange range_;
  TupleCount pos_;
  std::uint64_t last_block_;
};

/// Sequential, block-buffered writer appending to a DiskFile. Charges one
/// block write per B tuples appended (plus one for a trailing partial
/// block at Finish()).
///
/// lint: tagged-by-caller — like FileReader, the operator that opens the
/// writer owns the I/O attribution tag.
class FileWriter {
 public:
  explicit FileWriter(FilePtr file) : file_(std::move(file)) {}

  ~FileWriter() {
    // Finish() can raise a typed fault when an injector is active. If the
    // destructor runs during an unwind the partial file is being
    // abandoned anyway, so the trailing-block flush failure is dropped;
    // callers that care about the flush call Finish() explicitly.
    try {
      Finish();
    } catch (const StatusException&) {
    }
  }

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  void Append(std::span<const Value> tuple) {
    file_->AppendRaw(tuple);
    ++buffered_;
    if (buffered_ == file_->device()->B()) {
      file_->device()->ChargeWriteBlocks(1);
      buffered_ = 0;
    }
  }

  /// Bulk append of whole tuples (size must be a multiple of the file
  /// width) with one memcpy-style copy. Charges exactly what the
  /// equivalent sequence of Append() calls would: one block write per B
  /// tuples buffered, with any trailing partial block deferred to the
  /// next append or Finish().
  void AppendBlock(std::span<const Value> tuples) {
    assert(tuples.size() % file_->width() == 0);
    file_->AppendRawBulk(tuples);
    buffered_ += tuples.size() / file_->width();
    const TupleCount b = file_->device()->B();
    if (buffered_ >= b) {
      file_->device()->ChargeWriteBlocks(buffered_ / b);
      buffered_ %= b;
    }
  }

  /// Flushes the trailing partial block. Idempotent.
  void Finish() {
    if (buffered_ > 0) {
      file_->device()->ChargeWriteBlocks(1);
      buffered_ = 0;
    }
  }

  [[nodiscard]] const FilePtr& file() const { return file_; }

 private:
  FilePtr file_;
  TupleCount buffered_ = 0;
};

/// Tuple-at-a-time cursor layered over FileReader::NextBlock(): the hot
/// path (Head()/Advance() within a fetched block) is a pointer bump with
/// no charging branch. Blocks are fetched lazily, so a cursor that is
/// never read charges nothing — the charge profile is identical to
/// calling FileReader::Next() for exactly the tuples consumed.
class BlockCursor {
 public:
  explicit BlockCursor(FileRange range)
      : reader_(std::move(range)), width_(reader_.width()) {}

  [[nodiscard]] bool Done() const { return cur_ == end_ && reader_.Done(); }

  /// Current tuple. Fetches (and charges) the next block on first use.
  const Value* Head() {
    if (cur_ == end_) Refill();
    return cur_;
  }

  /// Advances to the next tuple without charging (the block is resident).
  void Advance() {
    assert(cur_ != end_);
    cur_ += width_;
  }

  /// Head() + Advance().
  const Value* Next() {
    const Value* t = Head();
    Advance();
    return t;
  }

 private:
  void Refill() {
    assert(!reader_.Done());
    const std::span<const Value> block = reader_.NextBlock();
    cur_ = block.data();
    end_ = block.data() + block.size();
  }

  FileReader reader_;
  std::uint32_t width_;
  const Value* cur_ = nullptr;
  const Value* end_ = nullptr;
};

}  // namespace emjoin::extmem

#endif  // EMJOIN_EXTMEM_FILE_H_
