#include "extmem/fault_injector.h"

#include <algorithm>

namespace emjoin::extmem {

std::optional<TupleCount> FaultInjector::NextShrink(std::uint64_t clock_ios,
                                                    TupleCount current,
                                                    TupleCount floor) {
  if (current <= floor) return std::nullopt;
  bool shrink = false;
  // One-shot scheduled shrinks become due when the clock passes their
  // tick; each fires exactly once (at the first poll at-or-after it).
  while (next_scheduled_shrink_ < config_.shrink_at_ios.size() &&
         clock_ios >= config_.shrink_at_ios[next_scheduled_shrink_]) {
    ++next_scheduled_shrink_;
    shrink = true;
  }
  if (config_.shrink_every_poll) shrink = true;
  if (!shrink && config_.shrink_prob > 0.0) {
    shrink = dist_(rng_) < config_.shrink_prob;
  }
  if (!shrink) return std::nullopt;
  const long double scaled =
      static_cast<long double>(current) * config_.shrink_factor;
  const TupleCount next =
      std::max<TupleCount>(floor, static_cast<TupleCount>(scaled));
  if (next >= current) return std::nullopt;
  ++stats_.shrinks;
  return next;
}

std::string FaultInjector::Describe() const {
  std::string s = "seed=" + std::to_string(config_.seed);
  s += " faults=" + std::to_string(stats_.TotalFaults());
  s += " (r=" + std::to_string(stats_.read_faults);
  s += " w=" + std::to_string(stats_.write_faults);
  s += " torn=" + std::to_string(stats_.torn_writes) + ")";
  s += " retries=" + std::to_string(stats_.retries);
  s += " backoff_ios=" + std::to_string(stats_.backoff_ios);
  s += " shrinks=" + std::to_string(stats_.shrinks);
  s += " exhaustions=" + std::to_string(stats_.exhaustions);
  return s;
}

}  // namespace emjoin::extmem
