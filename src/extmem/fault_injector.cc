#include "extmem/fault_injector.h"

#include <algorithm>

namespace emjoin::extmem {

std::optional<TupleCount> FaultInjector::NextShrink(std::uint64_t clock_ios,
                                                    TupleCount current,
                                                    TupleCount floor) {
  if (current <= floor) return std::nullopt;
  bool shrink = false;
  // One-shot scheduled shrinks become due when the clock passes their
  // tick; each fires exactly once (at the first poll at-or-after it).
  while (next_scheduled_shrink_ < config_.shrink_at_ios.size() &&
         clock_ios >= config_.shrink_at_ios[next_scheduled_shrink_]) {
    ++next_scheduled_shrink_;
    shrink = true;
  }
  if (config_.shrink_every_poll) shrink = true;
  if (!shrink && config_.shrink_prob > 0.0) {
    shrink = dist_(rng_) < config_.shrink_prob;
  }
  if (!shrink) return std::nullopt;
  const long double scaled =
      static_cast<long double>(current) * config_.shrink_factor;
  const TupleCount next =
      std::max<TupleCount>(floor, static_cast<TupleCount>(scaled));
  if (next >= current) return std::nullopt;
  ++stats_.shrinks;
  return next;
}

const char* RetryModeName(RetryMode mode) {
  switch (mode) {
    case RetryMode::kSteady: return "steady";
    case RetryMode::kPersistent: return "persistent";
    case RetryMode::kFailFast: return "fail_fast";
  }
  return "unknown";
}

namespace {
// Adaptive thresholds. A streak of kDeadStreak consecutive failed draws
// reads as a dead device; after kWarmupDraws total decisions, a fault
// rate at or above 1-in-kFlakyRateDenom reads as persistently flaky.
constexpr std::uint64_t kDeadStreak = 8;
constexpr std::uint64_t kWarmupDraws = 32;
constexpr std::uint64_t kFlakyRateDenom = 10;
}  // namespace

void FaultInjector::Observe(bool faulted) {
  ++draws_;
  streak_ = faulted ? streak_ + 1 : 0;
  if (streak_ >= kDeadStreak) {
    SetMode(RetryMode::kFailFast);
  } else if (draws_ >= kWarmupDraws &&
             stats_.TotalFaults() * kFlakyRateDenom >= draws_) {
    SetMode(RetryMode::kPersistent);
  } else {
    SetMode(RetryMode::kSteady);
  }
}

void FaultInjector::SetMode(RetryMode mode) {
  if (mode == mode_) return;
  prev_mode_ = mode_;
  mode_ = mode;
  mode_changed_ = true;
  ++mode_transitions_;
  effective_ = config_.retry;
  switch (mode_) {
    case RetryMode::kSteady:
      break;
    case RetryMode::kPersistent:
      // Flaky-but-live: double the retry budget so bad-luck runs survive.
      effective_.max_retries = config_.retry.max_retries * 2;
      break;
    case RetryMode::kFailFast:
      // Dead device: one cheap re-attempt, no backoff — surface IO_ERROR
      // instead of burning the virtual clock on doomed waits.
      effective_.max_retries = std::min<std::uint32_t>(
          config_.retry.max_retries, 1);
      effective_.backoff_base_ios = 0;
      break;
  }
}

std::string FaultInjector::Describe() const {
  std::string s = "seed=" + std::to_string(config_.seed);
  s += " faults=" + std::to_string(stats_.TotalFaults());
  s += " (r=" + std::to_string(stats_.read_faults);
  s += " w=" + std::to_string(stats_.write_faults);
  s += " torn=" + std::to_string(stats_.torn_writes) + ")";
  s += " retries=" + std::to_string(stats_.retries);
  s += " backoff_ios=" + std::to_string(stats_.backoff_ios);
  s += " shrinks=" + std::to_string(stats_.shrinks);
  s += " exhaustions=" + std::to_string(stats_.exhaustions);
  if (config_.adaptive_retry) {
    s += " retry_mode=";
    s += RetryModeName(mode_);
    s += " mode_transitions=" + std::to_string(mode_transitions_);
  }
  return s;
}

}  // namespace emjoin::extmem
