#ifndef EMJOIN_EXTMEM_DEVICE_H_
#define EMJOIN_EXTMEM_DEVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "extmem/defs.h"
#include "extmem/event_hook.h"
#include "extmem/io_stats.h"
#include "extmem/memory_gauge.h"

namespace emjoin::trace {
class Tracer;
}  // namespace emjoin::trace

namespace emjoin::metrics {
class Registry;
}  // namespace emjoin::metrics

namespace emjoin::extmem {

class DiskFile;
class FaultInjector;

/// Simulated external-memory device (Aggarwal–Vitter model).
///
/// The device is configured with a memory size `M` and a block size `B`,
/// both in tuples. Every transfer of `k` consecutive tuples between disk
/// and memory is charged `ceil(k / B)` I/Os to `stats()` (sequential
/// readers/writers charge per block actually crossed). File contents are
/// RAM-backed: this changes wall-clock time only, never the I/O counts,
/// which is what the paper's cost model measures.
class Device {
 public:
  /// @param memory_tuples  M: number of tuples that fit in main memory.
  /// @param block_tuples   B: number of tuples per disk block. Must satisfy
  ///                       1 <= B <= M.
  Device(TupleCount memory_tuples, TupleCount block_tuples);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] TupleCount M() const { return memory_tuples_; }
  [[nodiscard]] TupleCount B() const { return block_tuples_; }

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

  MemoryGauge& gauge() { return gauge_; }
  const MemoryGauge& gauge() const { return gauge_; }

  /// Creates an empty file whose tuples have `width` values each.
  [[nodiscard]] std::shared_ptr<DiskFile> NewFile(std::uint32_t width);

  /// Charges I/Os for a bulk transfer of `tuples` tuples (ceil division).
  void ChargeReadTuples(TupleCount tuples);
  void ChargeWriteTuples(TupleCount tuples);

  void ChargeReadBlocks(std::uint64_t blocks) {
    if (injector_ != nullptr) [[unlikely]] {
      FaultyChargeReads(blocks, /*tagged=*/true);
      return;
    }
    stats_.block_reads += blocks;
    TagEntry()->block_reads += blocks;
    NotifyBlocks(blocks, 0, /*recovery=*/false);
  }
  void ChargeWriteBlocks(std::uint64_t blocks) {
    if (injector_ != nullptr) [[unlikely]] {
      FaultyChargeWrites(blocks, /*tagged=*/true);
      return;
    }
    stats_.block_writes += blocks;
    TagEntry()->block_writes += blocks;
    NotifyBlocks(0, blocks, /*recovery=*/false);
  }

  /// Blocks needed to hold `tuples` tuples.
  [[nodiscard]] std::uint64_t BlocksFor(TupleCount tuples) const {
    return (tuples + block_tuples_ - 1) / block_tuples_;
  }

  /// Sets the attribution tag for subsequent charges (see ScopedIoTag).
  /// `tag` must outlive the scope it is active in (string literals in
  /// practice); entries are keyed by content, so equal literals from
  /// different translation units share one row.
  /// [[nodiscard]]: dropping the previous tag makes the scope
  /// unrestorable — use ScopedIoTag instead of calling this directly.
  [[nodiscard]] const char* set_tag(const char* tag) {
    const char* prev = tag_;
    tag_ = tag;
    tag_entry_ = FindTagEntry(tag);
    return prev;
  }

  /// Per-operation I/O breakdown ("scan", "sort", "semijoin", ...).
  /// Heterogeneous lookup (string_view / const char*) is supported.
  [[nodiscard]] const std::map<std::string, IoStats, std::less<>>& per_tag()
      const {
    return per_tag_;
  }

  /// Human-readable per-tag breakdown.
  [[nodiscard]] std::string TagReport() const;

  /// Optional tracer hook. When a tracer is attached, trace::Span RAII
  /// scopes opened against this device snapshot stats()/gauge() and the
  /// per-tag breakdown, so per-span and per-tag attribution stay
  /// consistent (tag deltas become span attributes). Detached (nullptr,
  /// the default) keeps the disabled tracing path to one branch per
  /// span. The tracer observes charges only at span boundaries and never
  /// alters them: block counts are identical with and without a tracer
  /// (pinned by io_invariance tests).
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

  /// Optional fault injector (see extmem/fault_injector.h). Detached
  /// (nullptr, the default), every charge takes the original fast path
  /// and block counts are bit-identical to a build without the fault
  /// layer (pinned by io_invariance tests). Attached, each block charge
  /// consults the injector: transient faults are retried with
  /// exponential backoff on the virtual I/O clock, and every fault,
  /// retry, and backoff tick is charged under the "recovery" tag so the
  /// algorithm-attributed counts stay exactly the fault-free ones.
  /// Unrecoverable faults raise StatusException (kIoError, kDeviceFull,
  /// kDataLoss) — callers reach them as typed Status via the Try* APIs.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Optional metrics registry hook (see metrics/registry.h). Like the
  /// tracer, the registry is a pure observer: instrumented substrate
  /// code (sorter fan-ins and run lengths, operator emit batches)
  /// records distributions through this pointer, and aggregate views
  /// (per-tag I/O, fault tallies, peak residency) are collected as
  /// before/after snapshots by metrics/collect.h. Detached (nullptr,
  /// the default) costs one branch at each instrumentation point, and
  /// attaching a registry changes zero block counts (pinned by
  /// io_invariance tests).
  void set_metrics(metrics::Registry* registry) { metrics_ = registry; }
  metrics::Registry* metrics() const { return metrics_; }

  /// Optional live-event sink (see extmem/event_hook.h). The fourth
  /// observer hook, and like the others a pure one: the sink is told
  /// about charges and structured events (faults, retries, shrinks,
  /// phase marks) but can never alter them, so attaching it changes
  /// zero block counts (pinned by io_invariance tests). Sharded
  /// execution wires each shard device to `sink->ShardView(s)`, so the
  /// sink must be thread-safe when shards run on worker threads.
  void set_events(IoEventSink* events) { events_ = events; }
  IoEventSink* events() const { return events_; }

  /// The tuple budget operators should plan against: min(M, enforced
  /// gauge limit). This is also the safe point where pending
  /// injector-scheduled budget shrinks take effect (shrinks are applied
  /// at planning polls, never mid-charge, so a well-behaved operator can
  /// always finish the allocation it planned). Fault-free this is M.
  [[nodiscard]] TupleCount PlanningBudget();

  /// The chunk size an operator should load right now, given that it
  /// asked for `requested` tuples. Fault-free (no enforced limit below
  /// M) this returns `requested` unchanged, so golden I/O counts are
  /// untouched. Under an enforced shrunken budget it returns a smaller
  /// cap that leaves headroom for the nested sorts/semijoins a chunk's
  /// processing performs (a minimum-merge sort needs ~3 blocks resident
  /// on top of the chunk itself). Also a planning poll: pending shrinks
  /// take effect here. Never returns 0.
  [[nodiscard]] TupleCount DegradedChunkCap(TupleCount requested);

 private:
  TupleCount memory_tuples_;
  TupleCount block_tuples_;
  IoStats stats_;
  MemoryGauge gauge_;
  IoStats* TagEntry() {
    if (tag_entry_ == nullptr) tag_entry_ = FindTagEntry(tag_);
    return tag_entry_;
  }

  IoStats* FindTagEntry(std::string_view tag) {
    const auto it = per_tag_.find(tag);
    if (it != per_tag_.end()) return &it->second;
    return &per_tag_.emplace(std::string(tag), IoStats{}).first->second;
  }

  // Slow-path charge loops used when a fault injector is attached; one
  // block at a time, with retry/backoff/recovery accounting. `tagged`
  // mirrors the fast paths: block charges hit the current tag entry,
  // bulk tuple charges hit totals only.
  void FaultyChargeReads(std::uint64_t blocks, bool tagged);
  void FaultyChargeWrites(std::uint64_t blocks, bool tagged);
  void ChargeRecoveryReads(std::uint64_t blocks);
  void ChargeRecoveryWrites(std::uint64_t blocks);
  void CheckCapacityForWrite();
  // Adaptive-retry observability: records one backoff sample in the
  // registry histogram, and drains a pending retry-mode transition into
  // the event sink / trace counter / mode gauge.
  void RecordBackoff(std::uint64_t backoff);
  void DrainRetryModeChange();
  // Raises kIoError for a kill-switch interruption (kill_at_ios).
  [[noreturn]] void ThrowKilled(const char* op);

  void NotifyBlocks(std::uint64_t reads, std::uint64_t writes,
                    bool recovery) {
    if (events_ != nullptr) [[unlikely]] {
      events_->OnBlocks(reads, writes, recovery);
    }
  }
  void NotifyEvent(ObsEventKind kind, const char* name, std::uint64_t a = 0,
                   std::uint64_t b = 0) {
    if (events_ != nullptr) [[unlikely]] {
      events_->OnEvent(ObsEvent{kind, name, a, b, ObsEvent::kNoShard});
    }
  }

  const char* tag_ = "scan";
  IoStats* tag_entry_ = nullptr;
  std::map<std::string, IoStats, std::less<>> per_tag_;
  trace::Tracer* tracer_ = nullptr;
  FaultInjector* injector_ = nullptr;
  metrics::Registry* metrics_ = nullptr;
  IoEventSink* events_ = nullptr;
};

/// RAII I/O-attribution scope: all charges on `device` between
/// construction and destruction are attributed to `tag` in
/// Device::per_tag() (totals in stats() are unaffected).
class ScopedIoTag {
 public:
  ScopedIoTag(Device* device, const char* tag)
      : device_(device), prev_(device->set_tag(tag)) {}
  // Restoring the saved tag is the one place the returned previous tag
  // is legitimately unneeded.
  ~ScopedIoTag() { static_cast<void>(device_->set_tag(prev_)); }
  ScopedIoTag(const ScopedIoTag&) = delete;
  ScopedIoTag& operator=(const ScopedIoTag&) = delete;

 private:
  Device* device_;
  const char* prev_;
};

}  // namespace emjoin::extmem

#endif  // EMJOIN_EXTMEM_DEVICE_H_
