#ifndef EMJOIN_EXTMEM_SORTER_H_
#define EMJOIN_EXTMEM_SORTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "extmem/file.h"
#include "extmem/status.h"

namespace emjoin::extmem {

/// Compares two equal-width tuples by the given key columns, breaking ties
/// with the full tuple (so sorts are total orders and deterministic).
/// Returns <0, 0, >0.
[[nodiscard]] int CompareTuples(const Value* a, const Value* b,
                                std::uint32_t width,
                                std::span<const std::uint32_t> key_cols);

/// Checkpoint of an in-progress external sort: the sorted runs that are
/// already safely on the device, and how many merge passes completed.
/// The sorter updates a caller-supplied manifest after run formation and
/// after every merge pass (plus on failure, so the state at the point of
/// an unrecoverable fault is captured); passing the same manifest back
/// resumes from the completed runs instead of re-reading the input.
/// Because the merge order is a total order (CompareTuples breaks every
/// tie with the full tuple), a resumed sort produces bit-identical
/// output regardless of how runs were regrouped across the interruption.
struct SortManifest {
  bool valid = false;
  std::uint64_t passes_done = 0;
  std::vector<FilePtr> runs;
};

/// Recovery knobs for the sorter itself, on top of the device-level
/// retry policy: when the device gives up on a transfer inside one merge
/// group (typed kIoError/kDataLoss), the sorter discards only that
/// group's partial output and re-merges the group — completed groups and
/// runs are never redone — up to `group_retries` times per group. The
/// re-merge I/Os are charged under the "recovery" tag.
struct SortOptions {
  std::uint32_t group_retries = 2;
};

/// Standard external merge sort.
///
/// Cost: run formation reads+writes the input once; each merge pass
/// reads+writes it once more with fan-in max(2, M/B), realizing the
/// O((N/B) log_{M/B}(N/M)) bound whose log the paper suppresses under
/// the Õ notation.
///
/// Degradation: run size and per-pass fan-in are planned against
/// Device::PlanningBudget(), so a mid-run shrink of the enforced memory
/// budget yields smaller runs / smaller fan-in — i.e. extra merge passes
/// (the logarithmic factor the bounds suppress) — never a failure, down
/// to a floor of one block per run and binary fan-in.
///
/// @param input     tuples to sort (not modified).
/// @param key_cols  column indices compared lexicographically, most
///                  significant first. Remaining columns break ties.
/// @return a new file containing the sorted tuples.
///
/// Raises StatusException on unrecoverable device faults; fault-free it
/// never throws. TryExternalSort is the typed-Status boundary.
[[nodiscard]] FilePtr ExternalSort(const FileRange& input,
                                   std::span<const std::uint32_t> key_cols);

/// ExternalSort with a typed result and optional resume support. On an
/// unrecoverable fault the returned Status carries the fault, and
/// `manifest` (when non-null) holds the completed runs; calling again
/// with the same manifest resumes rather than restarting.
[[nodiscard]] Result<FilePtr> TryExternalSort(
    const FileRange& input, std::span<const std::uint32_t> key_cols,
    SortManifest* manifest = nullptr, const SortOptions& options = {});

/// Number of merge passes the sorter would use for `n` input tuples on
/// `device` (run formation not counted). Exposed for I/O accounting tests.
[[nodiscard]] std::uint64_t MergePassesFor(const Device& device,
                                           TupleCount n);

}  // namespace emjoin::extmem

#endif  // EMJOIN_EXTMEM_SORTER_H_
