#ifndef EMJOIN_EXTMEM_SORTER_H_
#define EMJOIN_EXTMEM_SORTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "extmem/file.h"

namespace emjoin::extmem {

/// Compares two equal-width tuples by the given key columns, breaking ties
/// with the full tuple (so sorts are total orders and deterministic).
/// Returns <0, 0, >0.
int CompareTuples(const Value* a, const Value* b, std::uint32_t width,
                  std::span<const std::uint32_t> key_cols);

/// Standard external merge sort.
///
/// Cost: run formation reads+writes the input once; each merge pass
/// reads+writes it once more with fan-in max(2, M/B), realizing the
/// O((N/B) log_{M/B}(N/M)) bound whose log the paper suppresses under
/// the Õ notation.
///
/// @param input     tuples to sort (not modified).
/// @param key_cols  column indices compared lexicographically, most
///                  significant first. Remaining columns break ties.
/// @return a new file containing the sorted tuples.
FilePtr ExternalSort(const FileRange& input,
                     std::span<const std::uint32_t> key_cols);

/// Number of merge passes the sorter would use for `n` input tuples on
/// `device` (run formation not counted). Exposed for I/O accounting tests.
std::uint64_t MergePassesFor(const Device& device, TupleCount n);

}  // namespace emjoin::extmem

#endif  // EMJOIN_EXTMEM_SORTER_H_
