#ifndef EMJOIN_EXTMEM_STATUS_H_
#define EMJOIN_EXTMEM_STATUS_H_

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace emjoin::extmem {

/// Typed error taxonomy for the external-memory stack. Every failure a
/// run can end in maps to exactly one code; the CLI maps codes to exit
/// statuses and the soak harness asserts that faulted runs terminate
/// with one of these (never a crash or silent corruption).
///
/// Threading contract (see docs/PARALLELISM.md): the whole substrate —
/// Device, MemoryGauge, files, Tracer, Registry, FaultInjector — is
/// lock-free and thread-confined. Sharded execution (src/parallel/)
/// gives every shard a private instance of each, run on one worker
/// thread, and merges them at a barrier on the orchestrating thread;
/// nothing here is safe to share across concurrently running shards.
/// Error propagation respects the same confinement: StatusException
/// never crosses a thread boundary — each shard task ends in a typed
/// Status via the Try* APIs, and the orchestrator surfaces the first
/// failing shard's Status (in shard order) as the whole query's result.
enum class StatusCode {
  kOk = 0,
  /// A device transfer failed and the retry policy was exhausted.
  kIoError,
  /// The device ran out of blocks (capacity limit reached).
  kDeviceFull,
  /// An enforced memory budget (MemoryGauge limit) was overrun.
  kBudgetExceeded,
  /// Malformed user input (CSV data, schema spec, non-acyclic query).
  kInvalidInput,
  /// A named host resource (input file) does not exist or is unreadable.
  kNotFound,
  /// A torn (partially persisted) block write was detected on read-back.
  kDataLoss,
  /// Internal invariant violation surfaced as an error instead of abort.
  kInternal,
};

/// Short stable name for a code ("IO_ERROR", "DEVICE_FULL", ...).
std::string_view StatusCodeName(StatusCode code);

/// A typed error (or success) value. Cheap to copy on the ok path: an
/// ok Status carries no message allocation. [[nodiscard]] at class level:
/// any call returning a Status that is dropped on the floor is a
/// swallowed error (also enforced by emjoin_lint's status-discard rule).
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "IO_ERROR: read of block 17 failed after 4 retries".
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Exception used to unwind the deep operator call stacks (device charge
/// points sit under recursive join operators and emit callbacks; threading
/// a return value through every frame would contort the hot paths that
/// the fault-free cost model depends on). It never escapes the library:
/// the Try* entry points and Result-returning APIs catch it and return
/// the carried Status. Code outside src/ should not need to catch it.
class StatusException : public std::runtime_error {
 public:
  explicit StatusException(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// A value or a typed error, for API boundaries (StatusOr-style).
/// [[nodiscard]] at class level for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(implicit)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // ok() iff value_ holds
};

/// Raises `status` as a StatusException. The only sanctioned way to
/// enter the exception-unwound interior from outside src/extmem: the
/// status-boundary lint rule bans literal `throw StatusException`
/// elsewhere, so every raise site stays behind this helper and the
/// unwinding mechanism can change without touching operator code.
[[noreturn]] inline void ThrowStatus(Status status) {
  throw StatusException(std::move(status));
}

/// Runs `fn()` (returning T) and converts a StatusException into an error
/// Result; the bridge between the exception-unwound interior and the
/// typed API surface.
template <typename Fn>
[[nodiscard]] auto CatchStatus(Fn&& fn) -> Result<decltype(fn())> {
  try {
    return std::forward<Fn>(fn)();
  } catch (const StatusException& e) {
    return e.status();
  }
}

/// Runs `fn()` and intercepts ONLY a kBudgetExceeded trip, returning the
/// carried Status; every other code keeps unwinding. This is the hook the
/// operator re-planning paths use: a budget trip is a recoverable signal
/// ("re-plan with a smaller fan-in"), whereas an I/O or data-loss error is
/// a verdict about the device that halving a chunk cannot fix.
template <typename Fn>
[[nodiscard]] std::optional<Status> BudgetTripOf(Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
    return std::nullopt;
  } catch (const StatusException& e) {
    if (e.status().code() != StatusCode::kBudgetExceeded) throw;
    return e.status();
  }
}

}  // namespace emjoin::extmem

#endif  // EMJOIN_EXTMEM_STATUS_H_
