#include "obs/progress.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "extmem/event_hook.h"

namespace emjoin::obs {

namespace {

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

const char* ShardStateName(int state) {
  switch (state) {
    case 1: return "running";
    case 2: return "finished";
    case 3: return "failed";
    default: return "idle";
  }
}

}  // namespace

std::string ProgressSnapshot::ToJson() const {
  std::string out = "{";
  out += "\"percent\": " + JsonNumber(percent);
  out += ", \"complete\": ";
  out += complete ? "true" : "false";
  out += ", \"done_ios\": " + std::to_string(done_ios);
  out += ", \"recovery_ios\": " + std::to_string(recovery_ios);
  out += ", \"predicted_ios\": " + JsonNumber(predicted_ios);
  out += ", \"eta_ios\": " + JsonNumber(eta_ios);
  out += ", \"phase\": \"" + phase + "\"";
  out += ", \"phases_done\": " + std::to_string(phases_done);
  out += ", \"phase_count\": " + std::to_string(phase_count);
  out += ", \"shards\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardProgress& s = shards[i];
    if (i > 0) out += ", ";
    out += "{\"shard\": " + std::to_string(s.shard);
    out += ", \"ios\": " + std::to_string(s.ios);
    out += ", \"recovery_ios\": " + std::to_string(s.recovery_ios);
    out += ", \"state\": \"";
    out += ShardStateName(s.state);
    out += "\"}";
  }
  out += "]}\n";
  return out;
}

void ProgressTracker::SetPlan(std::vector<PhasePlan> plan) {
  const std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  predicted_total_ = 0.0L;
  for (const PhasePlan& p : plan_) {
    predicted_total_ += std::max(p.expected_ios, 0.0L);
  }
  phases_done_ = 0;
  phase_active_ = false;
  phase_nesting_ = 0;
}

void ProgressTracker::OnBlocks(std::uint32_t shard, std::uint64_t reads,
                               std::uint64_t writes, bool recovery) {
  const std::uint64_t blocks = reads + writes;
  if (blocks == 0) return;
  if (recovery) {
    recovery_ios_.fetch_add(blocks, std::memory_order_relaxed);
  } else {
    done_ios_.fetch_add(blocks, std::memory_order_relaxed);
  }
  if (shard < kMaxShards) {
    ShardSlot& slot = shards_[shard];
    (recovery ? slot.recovery : slot.ios)
        .fetch_add(blocks, std::memory_order_relaxed);
  }
}

void ProgressTracker::OnPhaseBegin(const char* name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (phase_active_) {
    // A nested span reusing the current phase's name (or any inner
    // operator span) — never advances the plan.
    if (std::strcmp(name, plan_[phases_done_].name) == 0) ++phase_nesting_;
    return;
  }
  if (phases_done_ >= plan_.size()) return;
  if (std::strcmp(name, plan_[phases_done_].name) != 0) return;
  phase_active_ = true;
  phase_nesting_ = 0;
  phase_start_ios_ = done_ios_.load(std::memory_order_relaxed);
}

void ProgressTracker::OnPhaseEnd(const char* name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!phase_active_) return;
  if (std::strcmp(name, plan_[phases_done_].name) != 0) return;
  if (phase_nesting_ > 0) {
    --phase_nesting_;
    return;
  }
  phase_active_ = false;
  ++phases_done_;
}

void ProgressTracker::OnShardStart(std::uint32_t shard) {
  if (shard >= kMaxShards) return;
  shards_[shard].state.store(1, std::memory_order_release);
}

void ProgressTracker::OnShardFinish(std::uint32_t shard, bool ok) {
  if (shard >= kMaxShards) return;
  shards_[shard].state.store(ok ? 2 : 3, std::memory_order_release);
}

void ProgressTracker::MarkComplete() {
  complete_.store(true, std::memory_order_release);
}

std::uint64_t ProgressTracker::Clock() const {
  return done_ios_.load(std::memory_order_relaxed) +
         recovery_ios_.load(std::memory_order_relaxed);
}

double ProgressTracker::UnlockedRawPercent(std::uint64_t done) const {
  if (predicted_total_ <= 0.0L || plan_.empty()) return 0.0;
  long double fraction = 0.0L;
  for (std::size_t i = 0; i < phases_done_ && i < plan_.size(); ++i) {
    fraction += std::max(plan_[i].expected_ios, 0.0L) / predicted_total_;
  }
  if (phase_active_ && phases_done_ < plan_.size()) {
    const long double expected =
        std::max(plan_[phases_done_].expected_ios, 0.0L);
    const long double weight = expected / predicted_total_;
    const std::uint64_t in_phase =
        done >= phase_start_ios_ ? done - phase_start_ios_ : 0;
    const long double ratio =
        expected > 0.0L
            ? std::min(1.0L, static_cast<long double>(in_phase) / expected)
            : 1.0L;
    fraction += weight * ratio;
  }
  return static_cast<double>(std::min(1.0L, fraction)) * 100.0;
}

ProgressSnapshot ProgressTracker::Snapshot() const {
  ProgressSnapshot snap;
  snap.done_ios = done_ios_.load(std::memory_order_relaxed);
  snap.recovery_ios = recovery_ios_.load(std::memory_order_relaxed);
  snap.complete = complete_.load(std::memory_order_acquire);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snap.phase_count = plan_.size();
    snap.phases_done = std::min(phases_done_, plan_.size());
    snap.predicted_ios = static_cast<double>(predicted_total_);
    if (!plan_.empty()) {
      const std::size_t cur = std::min(phases_done_, plan_.size() - 1);
      snap.phase = plan_[cur].name;
    }
    snap.percent = UnlockedRawPercent(snap.done_ios);
  }
  // Monotone running max in basis points; MarkComplete wins outright.
  const std::uint64_t raw_bp =
      snap.complete ? 10000
                    : static_cast<std::uint64_t>(snap.percent * 100.0);
  std::uint64_t seen = max_basis_points_.load(std::memory_order_relaxed);
  while (raw_bp > seen && !max_basis_points_.compare_exchange_weak(
                              seen, raw_bp, std::memory_order_relaxed)) {
  }
  const std::uint64_t bp = std::max(raw_bp, seen);
  snap.percent = snap.complete ? 100.0 : static_cast<double>(bp) / 100.0;
  snap.eta_ios = snap.complete
                     ? 0.0
                     : snap.predicted_ios * (1.0 - snap.percent / 100.0);
  for (std::uint32_t s = 0; s < kMaxShards; ++s) {
    const ShardSlot& slot = shards_[s];
    const int state = slot.state.load(std::memory_order_acquire);
    const std::uint64_t ios = slot.ios.load(std::memory_order_relaxed);
    const std::uint64_t rec = slot.recovery.load(std::memory_order_relaxed);
    if (state == 0 && ios == 0 && rec == 0) continue;
    snap.shards.push_back(ShardProgress{s, ios, rec, state});
  }
  return snap;
}

}  // namespace emjoin::obs
