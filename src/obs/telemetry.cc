#include "obs/telemetry.h"

namespace emjoin::obs {

Telemetry::Telemetry(std::size_t recorder_capacity)
    : recorder_(recorder_capacity) {
  for (std::uint32_t s = 0; s < kMaxShards; ++s) {
    shard_sinks_[s].Bind(this, s);
  }
}

void Telemetry::OnBlocks(std::uint64_t reads, std::uint64_t writes,
                         bool recovery) {
  HandleBlocks(extmem::ObsEvent::kNoShard, reads, writes, recovery);
}

void Telemetry::OnEvent(const extmem::ObsEvent& event) { HandleEvent(event); }

extmem::IoEventSink* Telemetry::ShardView(std::uint32_t shard) {
  if (shard >= kMaxShards) return this;
  return &shard_sinks_[shard];
}

void Telemetry::MarkComplete() {
  tracker_.MarkComplete();
  recorder_.Record(
      extmem::ObsEvent{extmem::ObsEventKind::kQueryComplete, "query"},
      tracker_.Clock());
}

void Telemetry::HandleBlocks(std::uint32_t shard, std::uint64_t reads,
                             std::uint64_t writes, bool recovery) {
  tracker_.OnBlocks(shard, reads, writes, recovery);
}

void Telemetry::HandleEvent(const extmem::ObsEvent& event) {
  recorder_.Record(event, tracker_.Clock());
  switch (event.kind) {
    case extmem::ObsEventKind::kPhaseBegin:
      // Only the orchestrator's spans advance the phase plan; shard-local
      // spans (stamped with a shard id) are log-only.
      if (event.shard == extmem::ObsEvent::kNoShard) {
        tracker_.OnPhaseBegin(event.name);
      }
      break;
    case extmem::ObsEventKind::kPhaseEnd:
      if (event.shard == extmem::ObsEvent::kNoShard) {
        tracker_.OnPhaseEnd(event.name);
      }
      break;
    case extmem::ObsEventKind::kShardStart:
      tracker_.OnShardStart(event.shard);
      break;
    case extmem::ObsEventKind::kShardFinish:
      tracker_.OnShardFinish(event.shard, event.a != 0);
      break;
    default:
      break;
  }
}

}  // namespace emjoin::obs
