#ifndef EMJOIN_OBS_PROGRESS_H_
#define EMJOIN_OBS_PROGRESS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/thread_annotations.h"

namespace emjoin::obs {

/// One planned phase of a query: a span name the orchestrator will open
/// (e.g. "load", "build", "join") and the cost model's predicted block
/// I/O for it. Phases are matched positionally and by name against
/// kPhaseBegin/kPhaseEnd events, so a plan may repeat names (one
/// build/join pair per bench loop).
struct PhasePlan {
  const char* name = "";
  long double expected_ios = 0.0L;
};

/// Live per-shard progress, included in ProgressSnapshot.
struct ShardProgress {
  std::uint32_t shard = 0;
  std::uint64_t ios = 0;           // non-recovery block I/Os
  std::uint64_t recovery_ios = 0;  // fault-overhead block I/Os
  // 0 = idle (never started), 1 = running, 2 = finished ok, 3 = failed.
  int state = 0;
};

/// A consistent read of the tracker, plus its /progress JSON encoding.
struct ProgressSnapshot {
  double percent = 0.0;  // monotone non-decreasing, in [0, 100]
  bool complete = false;
  std::uint64_t done_ios = 0;      // charged I/Os counted toward progress
  std::uint64_t recovery_ios = 0;  // excluded fault-overhead I/Os
  double predicted_ios = 0.0;      // sum of the plan's expectations
  double eta_ios = 0.0;            // predicted remaining, on the I/O clock
  std::string phase;               // current (or last) plan phase name
  std::size_t phases_done = 0;
  std::size_t phase_count = 0;
  std::vector<ShardProgress> shards;  // active shards only

  std::string ToJson() const;
};

/// Model-vs-measured progress estimation for one query.
///
/// The tracker combines a phase plan — names plus the paper's
/// closed-form predicted I/O per phase, known at plan time from
/// (n, M, B) — with the live block charges streaming off the Device
/// event hook. Percent-done is phase-weighted: completed phases
/// contribute their full weight (expected_i / total expected), the
/// current phase contributes weight * min(1, measured/expected).
///
/// Guarantees, pinned by obs_test:
///  - monotone non-decreasing (enforced via an atomic running max, so
///    even a re-planned or mis-predicted run never reports a drop);
///  - clamped to 100, and exactly 100 after MarkComplete();
///  - `recovery`-tagged fault I/O (retries, backoff, torn-write
///    repairs) is tallied separately and never advances progress, so a
///    flaky device cannot inflate percent-done;
///  - per-shard charges roll up into the whole-query figure: shard
///    devices feed the same tracker through Telemetry's shard views,
///    mirroring the Registry::MergeFrom / Tracer::Absorb merge pattern
///    but live rather than at the barrier.
///
/// Thread safety: charge accounting is lock-free (relaxed atomics; the
/// counters are independent and the HTTP reader tolerates slight skew);
/// the rare phase transitions and Snapshot() share a mutex.
class ProgressTracker {
 public:
  static constexpr std::uint32_t kMaxShards = 64;

  /// Installs the phase plan. Call before the planned spans open;
  /// calling mid-run is safe (the monotone max keeps percent from
  /// dropping when the weights change).
  void SetPlan(std::vector<PhasePlan> plan) EXCLUDES(mu_);

  /// Account charged blocks (shard == ObsEvent::kNoShard for the
  /// orchestrator device). Lock-free.
  void OnBlocks(std::uint32_t shard, std::uint64_t reads,
                std::uint64_t writes, bool recovery);

  /// Phase transitions from the orchestrator's spans. Only top-level
  /// spans whose name matches the next planned phase advance the plan;
  /// anything else is ignored (operators open many inner spans).
  void OnPhaseBegin(const char* name) EXCLUDES(mu_);
  void OnPhaseEnd(const char* name) EXCLUDES(mu_);

  void OnShardStart(std::uint32_t shard);
  void OnShardFinish(std::uint32_t shard, bool ok);

  /// Forces percent to exactly 100 (the success path's final word).
  void MarkComplete();

  [[nodiscard]] bool complete() const {
    return complete_.load(std::memory_order_acquire);
  }

  /// Total observed block I/Os (progress-counted + recovery): the
  /// virtual I/O clock the flight recorder timestamps events with.
  [[nodiscard]] std::uint64_t Clock() const;

  [[nodiscard]] ProgressSnapshot Snapshot() const EXCLUDES(mu_);

 private:
  // Per-shard tallies on the OnBlocks hot path: lock-free by design
  // (each field is an independent relaxed counter; readers tolerate
  // slight skew between fields).
  struct ShardSlot {
    std::atomic<std::uint64_t> ios LOCK_FREE_ATOMIC{0};
    std::atomic<std::uint64_t> recovery LOCK_FREE_ATOMIC{0};
    std::atomic<int> state LOCK_FREE_ATOMIC{0};
  };

  double UnlockedRawPercent(std::uint64_t done) const REQUIRES(mu_);

  // Lock-free: bumped by every block charge (any device thread), read
  // by Snapshot/Clock. Relaxed — independent monotone counters.
  std::atomic<std::uint64_t> done_ios_ LOCK_FREE_ATOMIC{0};
  std::atomic<std::uint64_t> recovery_ios_ LOCK_FREE_ATOMIC{0};
  std::atomic<bool> complete_ LOCK_FREE_ATOMIC{false};
  // Monotonicity guard: percent * 10^4, advanced with a CAS max. The
  // CAS loop is relaxed on purpose: the value is a self-contained
  // monotone max (no other memory is published through it), so the
  // only property needed is the atomicity of each compare_exchange.
  mutable std::atomic<std::uint64_t> max_basis_points_ LOCK_FREE_ATOMIC{0};

  mutable std::mutex mu_;  // guards the plan/phase state below
  std::vector<PhasePlan> plan_ GUARDED_BY(mu_);
  long double predicted_total_ GUARDED_BY(mu_) = 0.0L;
  std::size_t phases_done_ GUARDED_BY(mu_) = 0;
  std::uint64_t phase_start_ios_ GUARDED_BY(mu_) = 0;
  // Depth of nested spans reusing the current phase's name, so an inner
  // "join" span closing does not end the planned "join" phase.
  std::uint32_t phase_nesting_ GUARDED_BY(mu_) = 0;
  bool phase_active_ GUARDED_BY(mu_) = false;

  std::array<ShardSlot, kMaxShards> shards_;
};

}  // namespace emjoin::obs

#endif  // EMJOIN_OBS_PROGRESS_H_
