#include "obs/flight_recorder.h"

#include <cstdio>

namespace emjoin::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void FlightRecorder::Record(const extmem::ObsEvent& event,
                            std::uint64_t clock) {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[seq % capacity_];
  // Invalidate first so a concurrent Snapshot never pairs the old ticket
  // with the new payload; then fill the payload (each field atomic, so
  // no field-level race either); publish last with a release store.
  slot.ticket.store(0, std::memory_order_release);
  slot.name.store(event.name, std::memory_order_relaxed);
  slot.a.store(event.a, std::memory_order_relaxed);
  slot.b.store(event.b, std::memory_order_relaxed);
  slot.clock.store(clock, std::memory_order_relaxed);
  slot.shard.store(event.shard, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(event.kind),
                  std::memory_order_relaxed);
  slot.ticket.store(seq + 1, std::memory_order_release);
}

std::vector<RecordedEvent> FlightRecorder::Snapshot() const {
  std::vector<RecordedEvent> out;
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  if (total == 0) return out;
  const std::uint64_t first = total > capacity_ ? total - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(total - first));
  for (std::uint64_t seq = first; seq < total; ++seq) {
    const Slot& slot = slots_[seq % capacity_];
    if (slot.ticket.load(std::memory_order_acquire) != seq + 1) continue;
    RecordedEvent rec;
    rec.seq = seq;
    rec.clock = slot.clock.load(std::memory_order_relaxed);
    rec.event.kind = static_cast<extmem::ObsEventKind>(
        slot.kind.load(std::memory_order_relaxed));
    rec.event.name = slot.name.load(std::memory_order_relaxed);
    rec.event.a = slot.a.load(std::memory_order_relaxed);
    rec.event.b = slot.b.load(std::memory_order_relaxed);
    rec.event.shard = slot.shard.load(std::memory_order_relaxed);
    // The slot may have been overwritten (or half-written) while we
    // copied it; the re-check discards such torn reads.
    if (slot.ticket.load(std::memory_order_acquire) != seq + 1) continue;
    out.push_back(rec);
  }
  return out;
}

std::string FlightRecorder::ToJsonl() const {
  std::string out;
  for (const RecordedEvent& rec : Snapshot()) {
    out += "{\"seq\": " + std::to_string(rec.seq);
    out += ", \"clock\": " + std::to_string(rec.clock);
    out += ", \"kind\": \"";
    out += KindName(rec.event.kind);
    out += "\", \"name\": \"";
    out += rec.event.name != nullptr ? rec.event.name : "";
    out += "\", \"a\": " + std::to_string(rec.event.a);
    out += ", \"b\": " + std::to_string(rec.event.b);
    if (rec.event.shard != extmem::ObsEvent::kNoShard) {
      out += ", \"shard\": " + std::to_string(rec.event.shard);
    }
    out += "}\n";
  }
  return out;
}

bool FlightRecorder::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "flight recorder: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string body = ToJsonl();
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "flight recorder: short write to %s\n",
                 path.c_str());
    return false;
  }
  return true;
}

const char* FlightRecorder::KindName(extmem::ObsEventKind kind) {
  switch (kind) {
    case extmem::ObsEventKind::kPhaseBegin: return "phase_begin";
    case extmem::ObsEventKind::kPhaseEnd: return "phase_end";
    case extmem::ObsEventKind::kReadFault: return "read_fault";
    case extmem::ObsEventKind::kWriteFault: return "write_fault";
    case extmem::ObsEventKind::kTornWrite: return "torn_write";
    case extmem::ObsEventKind::kRetry: return "retry";
    case extmem::ObsEventKind::kRetryExhausted: return "retry_exhausted";
    case extmem::ObsEventKind::kBudgetShrink: return "budget_shrink";
    case extmem::ObsEventKind::kShardStart: return "shard_start";
    case extmem::ObsEventKind::kShardFinish: return "shard_finish";
    case extmem::ObsEventKind::kWatermark: return "watermark";
    case extmem::ObsEventKind::kQueryComplete: return "query_complete";
    case extmem::ObsEventKind::kRetryModeChange: return "retry_mode_change";
  }
  return "unknown";
}

}  // namespace emjoin::obs
