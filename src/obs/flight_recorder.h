#ifndef EMJOIN_OBS_FLIGHT_RECORDER_H_
#define EMJOIN_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "extmem/event_hook.h"

namespace emjoin::obs {

/// One event captured by the flight recorder, with its capture context.
struct RecordedEvent {
  extmem::ObsEvent event;
  std::uint64_t seq = 0;    // global capture order (0-based, never reused)
  std::uint64_t clock = 0;  // virtual I/O clock at capture (block I/Os)
};

/// Fixed-size lock-free ring buffer of structured observability events:
/// phase transitions, fault/retry outcomes, budget shrinks, shard
/// start/finish, watermarks. The newest `capacity` events survive; a
/// wrapped ring still tells the post-mortem story because the events
/// that precede a failure are exactly the ones that remain.
///
/// Writers (operator threads, shard workers) reserve a slot with one
/// fetch_add and publish it with a release store of its ticket; every
/// payload field is itself atomic, so concurrent Record/Snapshot never
/// race (the ring is exercised under TSan via the tsan-smoke preset).
/// Timestamps are the virtual I/O clock — the cost model's notion of
/// time — never wall time, keeping dumps deterministic for fixed seeds.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Captures one event at virtual time `clock`. Lock-free, wait-free
  /// apart from the slot reservation fetch_add.
  void Record(const extmem::ObsEvent& event, std::uint64_t clock);

  /// Total events ever recorded (recorded() - size() have been
  /// overwritten by ring wrap-around).
  [[nodiscard]] std::uint64_t recorded() const {
    return next_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// The surviving events, oldest first. Slots mid-write by a
  /// concurrent Record are skipped (their ticket check fails), so a
  /// snapshot taken during a run is consistent, just possibly one
  /// event short.
  [[nodiscard]] std::vector<RecordedEvent> Snapshot() const;

  /// JSONL dump: one {"seq","clock","kind","name",...} object per line.
  [[nodiscard]] std::string ToJsonl() const;

  /// Writes ToJsonl() to `path`; false (after a stderr diagnostic) when
  /// the file cannot be written. This is the on-error-exit post-mortem
  /// artifact and the `/events` endpoint body.
  [[nodiscard]] bool WriteJsonl(const std::string& path) const;

  /// Stable lowercase name for a kind ("phase_begin", "read_fault",...).
  static const char* KindName(extmem::ObsEventKind kind);

 private:
  // One ring slot. Entirely lock-free; the ticket is the slot's
  // publication protocol and the only ordering-bearing field:
  //
  //   Writer: store ticket = 0 (release)   — invalidate the old entry so
  //           a concurrent reader discards it rather than mixing the old
  //           seq with new payload fields;
  //           store payload fields (relaxed) — ordering between payload
  //           fields does not matter, the ticket brackets them;
  //           store ticket = seq + 1 (release) — publish: every payload
  //           store above happens-before this store.
  //   Reader: load ticket (acquire), load payload (relaxed), re-load
  //           ticket (acquire) and compare — a changed or zero ticket
  //           means the payload may be torn, so the slot is skipped.
  //
  // The acquire on the first ticket load pairs with the writer's
  // publishing release, making the relaxed payload loads safe; the
  // re-check turns the remaining write-during-read window into a skip
  // instead of a torn event.
  struct Slot {
    std::atomic<std::uint64_t> ticket LOCK_FREE_ATOMIC{0};  // 0 = empty, else seq + 1
    std::atomic<const char*> name LOCK_FREE_ATOMIC{""};
    std::atomic<std::uint64_t> a LOCK_FREE_ATOMIC{0};
    std::atomic<std::uint64_t> b LOCK_FREE_ATOMIC{0};
    std::atomic<std::uint64_t> clock LOCK_FREE_ATOMIC{0};
    std::atomic<std::uint32_t> shard LOCK_FREE_ATOMIC{extmem::ObsEvent::kNoShard};
    std::atomic<std::uint8_t> kind LOCK_FREE_ATOMIC{0};
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  // Slot reservation counter: fetch_add(1, acq_rel) hands each writer a
  // unique seq; acquire loads in recorded()/Snapshot() see every ticket
  // published before the count they read.
  std::atomic<std::uint64_t> next_ LOCK_FREE_ATOMIC{0};
};

}  // namespace emjoin::obs

#endif  // EMJOIN_OBS_FLIGHT_RECORDER_H_
