#include "obs/http_exporter.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace emjoin::obs {

namespace {

// One scrape request/response cycle must finish within this many poll
// rounds of kPollMs each; a stalled client is dropped, never waited on.
constexpr int kPollMs = 100;
constexpr int kMaxRequestRounds = 20;

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpExporter::HttpExporter(Telemetry* telemetry) : telemetry_(telemetry) {}

HttpExporter::~HttpExporter() { Stop(); }

extmem::Status HttpExporter::Start(std::uint16_t port) {
  if (running()) {
    return extmem::Status(extmem::StatusCode::kInternal,
                          "http exporter already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return extmem::Status(extmem::StatusCode::kIoError,
                          "http exporter: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return extmem::Status(
        extmem::StatusCode::kIoError,
        "http exporter: cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  stop_.store(false, std::memory_order_release);
  pool_ = std::make_unique<parallel::WorkerPool>(1);
  pool_->Submit([this] { Serve(); });
  return extmem::Status::Ok();
}

void HttpExporter::Stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  pool_.reset();  // drains the serve task, joins the worker
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::PublishMetrics(std::string text) {
  const std::lock_guard<std::mutex> lock(metrics_mu_);
  metrics_text_ = std::move(text);
}

void HttpExporter::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void HttpExporter::HandleConnection(int fd) {
  // Read until the request line is terminated; scrapers send the whole
  // request in one segment, so a couple of rounds suffice.
  std::string request;
  for (int round = 0; round < kMaxRequestRounds; ++round) {
    if (request.find('\n') != std::string::npos) break;
    if (stop_.load(std::memory_order_acquire)) return;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, kPollMs) <= 0) continue;
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t eol = request.find('\n');
  if (eol == std::string::npos) return;
  std::string line = request.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::string response = ResponseFor(line);
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

std::string HttpExporter::ResponseFor(const std::string& request_line) {
  // "GET <path> HTTP/1.x" — anything else is a 400.
  if (request_line.rfind("GET ", 0) != 0) {
    return HttpResponse("400 Bad Request", "text/plain", "bad request\n");
  }
  const std::size_t path_begin = 4;
  const std::size_t path_end = request_line.find(' ', path_begin);
  const std::string path =
      request_line.substr(path_begin, path_end == std::string::npos
                                          ? std::string::npos
                                          : path_end - path_begin);
  if (path == "/healthz") {
    return HttpResponse("200 OK", "text/plain", "ok\n");
  }
  if (path == "/metrics") {
    std::string body;
    {
      const std::lock_guard<std::mutex> lock(metrics_mu_);
      body = metrics_text_;
    }
    return HttpResponse("200 OK", "text/plain; version=0.0.4", body);
  }
  if (path == "/progress") {
    return HttpResponse("200 OK", "application/json",
                        telemetry_->tracker().Snapshot().ToJson());
  }
  if (path == "/events") {
    return HttpResponse("200 OK", "application/x-ndjson",
                        telemetry_->recorder().ToJsonl());
  }
  return HttpResponse("404 Not Found", "text/plain", "not found\n");
}

}  // namespace emjoin::obs
