#include "obs/http_exporter.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <utility>

#include "obs/build_info.h"

namespace emjoin::obs {

namespace {

// One scrape request/response cycle must finish within this many poll
// rounds of kPollMs each; a stalled client is dropped, never waited on.
constexpr int kPollMs = 100;
constexpr int kMaxRequestRounds = 20;

// Largest accepted POST body. Query specs are a few hundred bytes;
// anything near this bound is a client bug, answered with 413.
constexpr std::size_t kMaxBodyBytes = std::size_t{1} << 20;

std::string FormatResponse(const std::string& status,
                           const std::string& content_type,
                           const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// Content-Length from a raw header block, 0 when absent (GET requests
// and body-less POSTs). Header names are case-insensitive.
std::size_t ContentLengthOf(const std::string& headers) {
  std::size_t pos = 0;
  while (pos < headers.size()) {
    std::size_t eol = headers.find('\n', pos);
    if (eol == std::string::npos) eol = headers.size();
    std::string line = headers.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (name != "content-length") continue;
    std::size_t value = 0;
    bool any = false;
    for (std::size_t i = colon + 1; i < line.size(); ++i) {
      const char c = line[i];
      if (c == ' ' || c == '\t' || c == '\r') continue;
      if (c < '0' || c > '9') break;
      value = value * 10 + static_cast<std::size_t>(c - '0');
      any = true;
    }
    if (any) return value;
  }
  return 0;
}

}  // namespace

HttpExporter::HttpExporter(Telemetry* telemetry) : telemetry_(telemetry) {}

HttpExporter::~HttpExporter() { Stop(); }

extmem::Status HttpExporter::Start(std::uint16_t port) {
  if (running()) {
    return extmem::Status(extmem::StatusCode::kInternal,
                          "http exporter already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return extmem::Status(extmem::StatusCode::kIoError,
                          "http exporter: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return extmem::Status(
        extmem::StatusCode::kIoError,
        "http exporter: cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  start_time_ = std::chrono::steady_clock::now();
  started_ = true;
  stop_.store(false, std::memory_order_release);
  pool_ = std::make_unique<parallel::WorkerPool>(1);
  pool_->Submit([this] { Serve(); });
  return extmem::Status::Ok();
}

void HttpExporter::Stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  pool_.reset();  // drains the serve task, joins the worker
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::PublishMetrics(std::string text) {
  const std::lock_guard<std::mutex> lock(metrics_mu_);
  metrics_text_ = std::move(text);
}

std::uint64_t HttpExporter::UptimeMs() const {
  if (!started_) return 0;
  const auto elapsed = std::chrono::steady_clock::now() - start_time_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count());
}

void HttpExporter::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void HttpExporter::HandleConnection(int fd) {
  // Read until the header block terminates, then (for POSTs) until the
  // Content-Length-framed body is complete. Scrapers send the whole
  // request in one segment, so a couple of rounds suffice.
  std::string raw;
  std::size_t header_end = std::string::npos;
  std::size_t body_needed = 0;
  for (int round = 0; round < kMaxRequestRounds; ++round) {
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        body_needed = ContentLengthOf(raw.substr(0, header_end));
      }
    }
    if (header_end != std::string::npos) {
      if (body_needed > kMaxBodyBytes) {
        const std::string response = FormatResponse(
            "413 Payload Too Large", "text/plain", "body too large\n");
        (void)::send(fd, response.data(), response.size(), 0);
        return;
      }
      if (raw.size() >= header_end + 4 + body_needed) break;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, kPollMs) <= 0) continue;
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  // A bare request line with no header terminator (a client that shut
  // down its write side early) is still served as a body-less request.
  const std::size_t eol = raw.find('\n');
  if (eol == std::string::npos) return;
  std::string line = raw.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();

  HttpRequest request;
  const std::size_t method_end = line.find(' ');
  if (method_end != std::string::npos) {
    request.method = line.substr(0, method_end);
    const std::size_t path_end = line.find(' ', method_end + 1);
    request.path =
        line.substr(method_end + 1, path_end == std::string::npos
                                        ? std::string::npos
                                        : path_end - method_end - 1);
  }
  if (header_end != std::string::npos && body_needed > 0 &&
      raw.size() >= header_end + 4) {
    request.body = raw.substr(header_end + 4, body_needed);
  }

  const std::string response = ResponseFor(request);
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

std::string HttpExporter::ResponseFor(const HttpRequest& request) {
  if (request.method.empty() || request.path.empty()) {
    return FormatResponse("400 Bad Request", "text/plain", "bad request\n");
  }
  if (handler_) {
    HttpReply reply;
    if (handler_(request, &reply)) {
      return FormatResponse(reply.status, reply.content_type, reply.body);
    }
  }
  // Built-in single-query routes, GET only.
  if (request.method != "GET") {
    return FormatResponse("400 Bad Request", "text/plain", "bad request\n");
  }
  const std::string& path = request.path;
  if (path == "/healthz") {
    return FormatResponse("200 OK", "application/json", HealthzJson());
  }
  if (path == "/metrics") {
    std::string body;
    {
      const std::lock_guard<std::mutex> lock(metrics_mu_);
      body = metrics_text_;
    }
    return FormatResponse("200 OK", "text/plain; version=0.0.4", body);
  }
  if (path == "/progress") {
    return FormatResponse("200 OK", "application/json",
                          telemetry_->tracker().Snapshot().ToJson());
  }
  if (path == "/events") {
    return FormatResponse("200 OK", "application/x-ndjson",
                          telemetry_->recorder().ToJsonl());
  }
  return FormatResponse("404 Not Found", "text/plain", "not found\n");
}

std::string HttpExporter::HealthzJson() const {
  // Single-query view: the attached Telemetry is the one live query
  // until its tracker completes. serve::Server overrides this route
  // with daemon-wide counts through its HttpHandler.
  const bool complete = telemetry_->tracker().complete();
  std::string out = "{\"status\": \"ok\", \"version\": \"";
  out += kBuildVersion;
  out += "\", \"uptime_ms\": " + std::to_string(UptimeMs());
  out += ", \"io_clock\": " + std::to_string(telemetry_->tracker().Clock());
  out += ", \"queries_live\": " + std::string(complete ? "0" : "1");
  out += ", \"queries_completed\": " + std::string(complete ? "1" : "0");
  out += "}\n";
  return out;
}

}  // namespace emjoin::obs
