#ifndef EMJOIN_OBS_BUILD_INFO_H_
#define EMJOIN_OBS_BUILD_INFO_H_

namespace emjoin::obs {

/// Build identity reported by /healthz (exporter and daemon alike).
/// The minor component tracks the CHANGES.md entry count, so a scrape
/// of a long-lived deployment identifies which change set it runs.
inline constexpr char kBuildVersion[] = "0.9.0";

}  // namespace emjoin::obs

#endif  // EMJOIN_OBS_BUILD_INFO_H_
