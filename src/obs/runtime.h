#ifndef EMJOIN_OBS_RUNTIME_H_
#define EMJOIN_OBS_RUNTIME_H_

// Process-wide telemetry wiring shared by emjoin_cli, the benches, and
// emjoin_export. metrics/obs.h parses the flags; this header acts on
// them: attach the global Telemetry to a Device, start/stop the HTTP
// exporter, publish registry snapshots, and run the end-of-run epilogue
// (mark complete, dump the flight recorder, linger for a last scrape).
//
// Header-only like metrics/obs.h so every tool shares one set of
// globals without a dedicated runtime library.

#include <chrono>
#include <cstdio>
#include <thread>

#include "extmem/device.h"
#include "extmem/status.h"
#include "metrics/obs.h"
#include "obs/http_exporter.h"
#include "obs/telemetry.h"

namespace emjoin::obs {

inline Telemetry& GlobalTelemetry() {
  static Telemetry telemetry;
  return telemetry;
}

inline HttpExporter& GlobalExporter() {
  static HttpExporter exporter(&GlobalTelemetry());
  return exporter;
}

/// True when any telemetry consumer was requested on the command line.
inline bool TelemetryConfigured() {
  const metrics::ObsConfig& config = metrics::GlobalObsConfig();
  return config.export_port >= 0 || !config.recorder_path.empty();
}

/// Attaches the global Telemetry as `dev`'s event sink when configured.
/// Observer-only: charged I/O counts are unchanged (io_invariance).
inline void AttachTelemetry(extmem::Device* dev) {
  if (TelemetryConfigured()) {
    dev->set_events(&GlobalTelemetry());
  }
}

/// Snapshots the global registry into the exporter's /metrics body.
inline void PublishGlobalMetrics() {
  if (metrics::GlobalObsConfig().export_port >= 0) {
    GlobalExporter().PublishMetrics(
        metrics::GlobalMetricsRegistry().ToPrometheusText());
  }
}

/// Starts the HTTP exporter iff --export-port was given. Prints the
/// resolved port (useful with --export-port=0) on success.
[[nodiscard]] inline extmem::Status StartConfiguredExporter() {
  const metrics::ObsConfig& config = metrics::GlobalObsConfig();
  if (config.export_port < 0) return extmem::Status::Ok();
  extmem::Status status = GlobalExporter().Start(
      static_cast<std::uint16_t>(config.export_port));
  if (status.ok()) {
    std::fprintf(stderr, "telemetry exporter on http://127.0.0.1:%u/\n",
                 static_cast<unsigned>(GlobalExporter().port()));
  }
  return status;
}

/// End-of-run epilogue. On success pins /progress at exactly 100 and
/// publishes a final /metrics snapshot; always dumps the flight
/// recorder when --recorder was given (the failure dump is the whole
/// point of a flight recorder); lingers --export-linger-ms so external
/// scrapers can take a final reading; then stops the exporter. Returns
/// `rc` unchanged unless a requested recorder dump failed.
inline int FinishTelemetry(int rc) {
  const metrics::ObsConfig& config = metrics::GlobalObsConfig();
  if (!TelemetryConfigured()) return rc;
  if (rc == 0) GlobalTelemetry().MarkComplete();
  PublishGlobalMetrics();
  if (!config.recorder_path.empty()) {
    if (GlobalTelemetry().recorder().WriteJsonl(config.recorder_path)) {
      std::fprintf(stderr, "flight recorder (%llu events) -> %s\n",
                   static_cast<unsigned long long>(
                       GlobalTelemetry().recorder().recorded()),
                   config.recorder_path.c_str());
    } else if (rc == 0) {
      rc = 74;  // EX_IOERR: the requested artifact could not be written
    }
  }
  if (GlobalExporter().running() && config.export_linger_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config.export_linger_ms));
  }
  GlobalExporter().Stop();
  return rc;
}

}  // namespace emjoin::obs

#endif  // EMJOIN_OBS_RUNTIME_H_
