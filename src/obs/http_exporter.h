#ifndef EMJOIN_OBS_HTTP_EXPORTER_H_
#define EMJOIN_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "extmem/status.h"
#include "obs/telemetry.h"
#include "parallel/worker_pool.h"

namespace emjoin::obs {

/// Minimal dependency-free HTTP/1.0 exporter over POSIX sockets,
/// serving live telemetry for one Telemetry instance:
///
///   GET /healthz   -> "ok" (200 as soon as the listener is up)
///   GET /metrics   -> the last metrics text published with
///                     PublishMetrics() (Prometheus exposition format)
///   GET /progress  -> ProgressTracker snapshot as one JSON object
///   GET /events    -> FlightRecorder dump as JSONL
///
/// The listener binds 127.0.0.1 only (this is an introspection port,
/// not a service) and its accept loop runs as a single long-lived task
/// on a private one-worker parallel::WorkerPool — the codebase's only
/// sanctioned thread-spawn mechanism. Connections are handled one at a
/// time with short poll() deadlines; scrapers (curl, Prometheus) only
/// ever issue tiny requests, so there is no keep-alive and no pipelining.
///
/// The exporter reads the tracker/recorder through their thread-safe
/// snapshot APIs and never touches a Device, keeping the observer-only
/// invariant: serving /metrics mid-join changes zero charged I/Os.
class HttpExporter {
 public:
  explicit HttpExporter(Telemetry* telemetry);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// starts the serving loop. kIoError when the bind/listen fails.
  extmem::Status Start(std::uint16_t port);

  /// Stops the serving loop, joins the worker, closes the socket.
  /// Idempotent; the destructor calls it.
  void Stop();

  [[nodiscard]] bool running() const {
    return pool_ != nullptr;
  }

  /// The bound port (resolved when Start was given port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Atomically replaces the /metrics response body. Call after each
  /// registry collection point (bench loop, merge barrier, run end).
  void PublishMetrics(std::string text);

  /// Requests served since Start (diagnostics).
  [[nodiscard]] std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);
  [[nodiscard]] std::string ResponseFor(const std::string& request_line);

  Telemetry* telemetry_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::mutex metrics_mu_;
  std::string metrics_text_;
  std::unique_ptr<parallel::WorkerPool> pool_;
};

}  // namespace emjoin::obs

#endif  // EMJOIN_OBS_HTTP_EXPORTER_H_
