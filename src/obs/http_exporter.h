#ifndef EMJOIN_OBS_HTTP_EXPORTER_H_
#define EMJOIN_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/thread_annotations.h"
#include "extmem/status.h"
#include "obs/telemetry.h"
#include "parallel/worker_pool.h"

namespace emjoin::obs {

/// One parsed inbound HTTP request: the method and path from the
/// request line plus the body (Content-Length bytes of a POST).
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/queries/q1/progress"
  std::string body;    // empty for body-less requests
};

/// What a route produces. `status` is the full HTTP status ("200 OK",
/// "404 Not Found", ...); the exporter serializes headers and framing.
struct HttpReply {
  std::string status = "200 OK";
  std::string content_type = "text/plain";
  std::string body;
};

/// Route hook consulted before the built-in endpoints: return true to
/// claim the request (the reply is sent as-is), false to fall through.
/// Called on the exporter's serve thread; implementations must be
/// thread-safe against whatever state they read. Install before Start.
using HttpHandler = std::function<bool(const HttpRequest&, HttpReply*)>;

/// Minimal dependency-free HTTP/1.0 server over POSIX sockets,
/// serving live telemetry for one Telemetry instance:
///
///   GET /healthz   -> JSON: {"status": "ok", build version, uptime on
///                     the wall and virtual I/O clocks, live/completed
///                     query counts} (200 as soon as the listener is up)
///   GET /metrics   -> the last metrics text published with
///                     PublishMetrics() (Prometheus exposition format)
///   GET /progress  -> ProgressTracker snapshot as one JSON object
///   GET /events    -> FlightRecorder dump as JSONL
///
/// A multi-tenant consumer (serve::Server) installs an HttpHandler that
/// claims its own routes — including POST submissions, which is why the
/// connection loop reads Content-Length-framed bodies — and the
/// built-ins above remain the single-query fallback.
///
/// The listener binds 127.0.0.1 only (this is an introspection port,
/// not a service) and its accept loop runs as a single long-lived task
/// on a private one-worker parallel::WorkerPool — the codebase's only
/// sanctioned thread-spawn mechanism. Connections are handled one at a
/// time with short poll() deadlines; scrapers (curl, Prometheus) only
/// ever issue tiny requests, so there is no keep-alive and no pipelining.
///
/// The exporter reads the tracker/recorder through their thread-safe
/// snapshot APIs and never touches a Device, keeping the observer-only
/// invariant: serving /metrics mid-join changes zero charged I/Os.
class HttpExporter {
 public:
  explicit HttpExporter(Telemetry* telemetry);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// starts the serving loop. kIoError when the bind/listen fails.
  extmem::Status Start(std::uint16_t port);

  /// Stops the serving loop, joins the worker, closes the socket.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Installs the route hook (see HttpHandler). Call before Start.
  void set_handler(HttpHandler handler) { handler_ = std::move(handler); }

  [[nodiscard]] bool running() const {
    return pool_ != nullptr;
  }

  /// The bound port (resolved when Start was given port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Atomically replaces the /metrics response body. Call after each
  /// registry collection point (bench loop, merge barrier, run end).
  void PublishMetrics(std::string text) EXCLUDES(metrics_mu_);

  /// Requests served since Start (diagnostics).
  [[nodiscard]] std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Milliseconds of wall-clock uptime since Start (0 before Start).
  [[nodiscard]] std::uint64_t UptimeMs() const;

 private:
  void Serve();
  void HandleConnection(int fd);
  [[nodiscard]] std::string ResponseFor(const HttpRequest& request);
  [[nodiscard]] std::string HealthzJson() const;

  Telemetry* telemetry_;
  // listen_fd_/port_/started_/start_time_/handler_ need no lock: they
  // are written before the serve task is submitted (Start) or after the
  // pool is joined (Stop), so the serve thread only ever reads settled
  // values — the pool's queue mutex is the synchronization point.
  HttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  // Lock-free: Stop() (any thread) flips it; the serve loop polls it
  // between poll() deadlines. Release/acquire pairing.
  std::atomic<bool> stop_ LOCK_FREE_ATOMIC{false};
  // Lock-free: bumped per request on the serve thread, read by tests
  // and /healthz; a relaxed diagnostic counter.
  std::atomic<std::uint64_t> requests_ LOCK_FREE_ATOMIC{0};
  std::chrono::steady_clock::time_point start_time_{};
  bool started_ = false;
  std::mutex metrics_mu_;
  std::string metrics_text_ GUARDED_BY(metrics_mu_);
  std::unique_ptr<parallel::WorkerPool> pool_;
};

}  // namespace emjoin::obs

#endif  // EMJOIN_OBS_HTTP_EXPORTER_H_
