#ifndef EMJOIN_OBS_TELEMETRY_H_
#define EMJOIN_OBS_TELEMETRY_H_

#include <array>
#include <cstdint>

#include "extmem/event_hook.h"
#include "obs/flight_recorder.h"
#include "obs/progress.h"

namespace emjoin::obs {

/// The one observer a query attaches to its Device(s): routes the event
/// stream into the ProgressTracker (live percent/ETA) and the
/// FlightRecorder (post-mortem log), stamping per-shard identity on the
/// way through.
///
/// Sharded wiring mirrors the PR 6 merge pattern but live: the
/// orchestrator device gets the Telemetry itself; each shard substrate
/// device gets ShardView(s), a thin wrapper that forwards every
/// callback with `shard = s`. All shards therefore feed one tracker and
/// one recorder concurrently — both are thread-safe by construction
/// (atomics in the tracker's charge path, the recorder's lock-free
/// ring), matching the hook's thread-safety contract in device.h.
///
/// Observer-only: Telemetry never touches a Device except through the
/// read-only callbacks, so attaching it changes zero charged I/Os
/// (pinned alongside tracer/metrics in io_invariance).
class Telemetry final : public extmem::IoEventSink {
 public:
  static constexpr std::uint32_t kMaxShards = ProgressTracker::kMaxShards;

  explicit Telemetry(std::size_t recorder_capacity = 4096);

  void OnBlocks(std::uint64_t reads, std::uint64_t writes,
                bool recovery) override;
  void OnEvent(const extmem::ObsEvent& event) override;
  extmem::IoEventSink* ShardView(std::uint32_t shard) override;

  /// Success-path epilogue: pins progress at exactly 100 and records a
  /// query_complete event.
  void MarkComplete();

  [[nodiscard]] ProgressTracker& tracker() { return tracker_; }
  [[nodiscard]] const ProgressTracker& tracker() const { return tracker_; }
  [[nodiscard]] FlightRecorder& recorder() { return recorder_; }
  [[nodiscard]] const FlightRecorder& recorder() const { return recorder_; }

 private:
  /// Forwarder bound to one shard id; shares the owner's tracker and
  /// recorder. Phase events from inside a shard are recorded but do not
  /// advance the plan — the plan tracks the orchestrator's spans.
  class ShardSink final : public extmem::IoEventSink {
   public:
    void Bind(Telemetry* owner, std::uint32_t shard) {
      owner_ = owner;
      shard_ = shard;
    }
    void OnBlocks(std::uint64_t reads, std::uint64_t writes,
                  bool recovery) override {
      owner_->HandleBlocks(shard_, reads, writes, recovery);
    }
    void OnEvent(const extmem::ObsEvent& event) override {
      extmem::ObsEvent stamped = event;
      stamped.shard = shard_;
      owner_->HandleEvent(stamped);
    }

   private:
    Telemetry* owner_ = nullptr;
    std::uint32_t shard_ = 0;
  };

  void HandleBlocks(std::uint32_t shard, std::uint64_t reads,
                    std::uint64_t writes, bool recovery);
  void HandleEvent(const extmem::ObsEvent& event);

  ProgressTracker tracker_;
  FlightRecorder recorder_;
  std::array<ShardSink, kMaxShards> shard_sinks_;
};

}  // namespace emjoin::obs

#endif  // EMJOIN_OBS_TELEMETRY_H_
