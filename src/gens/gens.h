#ifndef EMJOIN_GENS_GENS_H_
#define EMJOIN_GENS_GENS_H_

#include <string>
#include <vector>

#include "query/hypergraph.h"

namespace emjoin::gens {

using query::EdgeId;
using query::JoinQuery;

/// A subset of the query's relations, by original edge id, sorted.
using EdgeSet = std::vector<EdgeId>;

/// One family S produced by a branch of GenS(Q): a set of relation
/// subsets, each contributing a Ψ term to the algorithm's cost bound
/// (Theorem 3). Sorted and deduplicated.
using Family = std::vector<EdgeSet>;

/// Enumerates every family generatable by the nondeterministic process
/// GenS(Q) (Algorithm 3), implemented per eq. (13):
///
///   GenS(Q) = 2^X  ∪  { f ∪ S : f ⊆ X−{e0},  S ∈ GenS(Q−X) }
///                 ∪  { f ∪ S : f ⊊ X−{e0},  S ∈ GenS(Q−X+{e0}) }
///
/// for a star X with core e0; buds are dropped; islands and leaves e
/// produce GenS(Q−e) ∪ { S ∪ {e} }. Families are deduplicated across
/// branches, and with `prune_supersets` (default) any family that is a
/// superset of another is removed — it can never win the min-max cost,
/// and pruning tames the doubly-exponential branch blowup on longer
/// queries. Pass false to see the raw branch output (tests, reporting).
/// Query size must be constant (the paper's data-complexity assumption).
std::vector<Family> GenSFamilies(const JoinQuery& q,
                                 bool prune_supersets = true);

/// Families generatable by GenS branches whose *first* peel involves edge
/// `e`: a star peel whose petal set contains `e`, or (when the query has
/// no star) an island/leaf peel of `e` itself. Buds are dropped first as
/// usual. Returns an empty vector when no branch starts with `e` — the
/// cost-guided chooser then treats `e` as an inadmissible first peel.
/// This mirrors the Theorem 3 correspondence between GenS branches and
/// Algorithm 2 peel orders (a star branch maps to peeling its petals one
/// by one, then the core).
std::vector<Family> GenSFamiliesFirstPeel(const JoinQuery& q, EdgeId e);

/// Removes from `family` every subset S whose Ψ is structurally dominated
/// by a kept subset on all fully reduced instances — the star rule (§4.2):
/// S ∪ {core} is dominated by S ∪ {petals} once all petals are present.
/// Used only for compact reporting; cost evaluation uses full families.
Family PruneDominated(const JoinQuery& q, const Family& family);

std::string FamilyToString(const Family& family);

}  // namespace emjoin::gens

#endif  // EMJOIN_GENS_GENS_H_
