#include "gens/planner.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "trace/tracer.h"

namespace emjoin::gens {

namespace {

long double BestBranchBound(
    const std::vector<Family>& families,
    const std::function<long double(const Family&)>& cost_of) {
  if (families.empty()) {
    return std::numeric_limits<long double>::infinity();
  }
  long double best = 0.0L;
  bool first = true;
  for (const Family& family : families) {
    const long double max_psi = cost_of(family);
    if (first || max_psi < best) {
      first = false;
      best = max_psi;
    }
  }
  return best;
}

LeafChooser MakeChooser(
    const std::function<long double(const JoinQuery&,
                                    const std::vector<storage::Relation>&,
                                    EdgeId)>& bound_of) {
  return [bound_of](const JoinQuery& live,
                    const std::vector<storage::Relation>& rels,
                    const std::vector<EdgeId>& candidates) -> std::size_t {
    assert(!candidates.empty());
    std::size_t best_idx = 0;
    long double best = 0.0L;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const long double b = bound_of(live, rels, candidates[i]);
      if (i == 0 || b < best) {
        best = b;
        best_idx = i;
      }
    }
    return best_idx;
  };
}

}  // namespace

LeafChooser FirstLeafChooser() {
  return [](const JoinQuery&, const std::vector<storage::Relation>&,
            const std::vector<EdgeId>& candidates) {
    assert(!candidates.empty());
    (void)candidates;
    return std::size_t{0};
  };
}

long double BoundIfPeeledFirst(const JoinQuery& live, EdgeId leaf,
                               TupleCount M, TupleCount B) {
  return BestBranchBound(GenSFamiliesFirstPeel(live, leaf),
                         [&](const Family& f) {
                           return FamilyMaxPsiWorstCase(live, f, M, B);
                         });
}

long double BoundIfPeeledFirstExact(const JoinQuery& live,
                                    const std::vector<storage::Relation>& rels,
                                    EdgeId leaf, TupleCount M, TupleCount B) {
  return BestBranchBound(GenSFamiliesFirstPeel(live, leaf),
                         [&](const Family& f) {
                           return FamilyMaxPsiExact(live, rels, f, M, B);
                         });
}

LeafChooser CostGuidedChooser(TupleCount M, TupleCount B) {
  // The bound computation (GenS enumeration + one LP per subset) is
  // non-trivial and the chooser runs once per recursive call, per memory
  // chunk. Decisions are memoized on the live query's shape with sizes
  // quantized to powers of two — the bound is asymptotic, so sub-2x size
  // differences never flip an asymptotically meaningful choice.
  auto cache = std::make_shared<std::map<std::string, std::size_t>>();
  return [M, B, cache](const JoinQuery& live,
                       const std::vector<storage::Relation>& rels,
                       const std::vector<EdgeId>& candidates) -> std::size_t {
    assert(!candidates.empty());
    extmem::Device* dev = rels.empty() ? nullptr : rels.front().device();
    if (dev != nullptr) trace::Count(dev, "chooser_calls");
    if (candidates.size() == 1) return 0;
    // Beyond ~8 edges the GenS enumeration itself becomes the bottleneck
    // (and the paper's optimality frontier ends at n = 8 anyway); fall
    // back to a fixed branch there.
    if (live.num_edges() > 8) return 0;
    std::string key;
    for (EdgeId e = 0; e < live.num_edges(); ++e) {
      for (query::AttrId a : live.edge(e).attrs()) {
        key += std::to_string(a);
        key += ',';
      }
      key += '@';
      key += std::to_string(std::bit_width(live.size(e)));
      key += ';';
    }
    key += '|';
    for (EdgeId c : candidates) {
      key += std::to_string(c);
      key += ',';
    }
    if (auto it = cache->find(key); it != cache->end()) {
      if (dev != nullptr) trace::Count(dev, "chooser_cache_hits");
      return it->second;
    }
    if (dev != nullptr) trace::Count(dev, "chooser_evals");

    std::size_t best_idx = 0;
    long double best = 0.0L;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const long double b = BoundIfPeeledFirst(live, candidates[i], M, B);
      if (i == 0 || b < best) {
        best = b;
        best_idx = i;
      }
    }
    (*cache)[key] = best_idx;
    return best_idx;
  };
}

LeafChooser ExactCostGuidedChooser(TupleCount M, TupleCount B) {
  return MakeChooser([M, B](const JoinQuery& live,
                            const std::vector<storage::Relation>& rels,
                            EdgeId leaf) {
    return BoundIfPeeledFirstExact(live, rels, leaf, M, B);
  });
}

}  // namespace emjoin::gens
