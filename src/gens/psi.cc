#include "gens/psi.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "counting/cardinality.h"
#include "gens/lp.h"
#include "query/edge_cover.h"

namespace emjoin::gens {

namespace {

long double DividePsi(long double numerator, std::size_t subset_size,
                      TupleCount M, TupleCount B) {
  long double denom = static_cast<long double>(B);
  for (std::size_t i = 1; i < subset_size; ++i) {
    denom *= static_cast<long double>(M);
  }
  return numerator / denom;
}

long double LinearTerm(const JoinQuery& q, TupleCount B) {
  long double total = 0.0L;
  for (query::EdgeId e = 0; e < q.num_edges(); ++e) {
    total += static_cast<long double>(q.size(e));
  }
  return total / static_cast<long double>(B);
}

BoundReport BestFamily(
    const JoinQuery& q, const std::vector<Family>& families,
    const std::function<long double(const EdgeSet&)>& psi_of, TupleCount B) {
  BoundReport report;
  bool first = true;
  for (const Family& family : families) {
    long double max_psi = 0.0L;
    for (const EdgeSet& s : family) {
      max_psi = std::max(max_psi, psi_of(s));
    }
    if (first || max_psi < report.max_psi) {
      first = false;
      report.best_family = family;
      report.max_psi = max_psi;
    }
  }
  report.linear_term = LinearTerm(q, B);
  report.bound = report.max_psi + report.linear_term;
  for (const EdgeSet& s : report.best_family) {
    report.terms.push_back({s, psi_of(s)});
  }
  std::sort(report.terms.begin(), report.terms.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return report;
}

}  // namespace

long double PsiExact(const JoinQuery& q,
                     const std::vector<storage::Relation>& rels,
                     const EdgeSet& subset, TupleCount M, TupleCount B) {
  if (subset.empty()) return 0.0L;
  long double numerator = 1.0L;
  for (const std::vector<query::EdgeId>& component :
       q.ConnectedComponents(subset)) {
    std::vector<std::uint32_t> idx(component.begin(), component.end());
    numerator *= static_cast<long double>(counting::SubjoinSize(rels, idx));
  }
  return DividePsi(numerator, subset.size(), M, B);
}

long double PsiWorstCase(const JoinQuery& q, const EdgeSet& subset,
                         TupleCount M, TupleCount B) {
  if (subset.empty()) return 0.0L;
  // Worst-case subjoin size over fully reduced instances, estimated by
  // the cross-product-instance LP. This is tighter than per-component
  // AGM, which ignores the size bounds of relations outside the subset
  // (those bounds constrain shared domains on reduced instances — the
  // effect behind the paper's "dominated subjoins are omitted" remarks).
  const long double numerator = MaxCrossProductSubjoin(q, subset);
  return DividePsi(numerator, subset.size(), M, B);
}

long double FamilyMaxPsiExact(const JoinQuery& q,
                              const std::vector<storage::Relation>& rels,
                              const Family& family, TupleCount M,
                              TupleCount B) {
  long double max_psi = 0.0L;
  for (const EdgeSet& s : family) {
    max_psi = std::max(max_psi, PsiExact(q, rels, s, M, B));
  }
  return max_psi;
}

long double FamilyMaxPsiWorstCase(const JoinQuery& q, const Family& family,
                                  TupleCount M, TupleCount B) {
  long double max_psi = 0.0L;
  for (const EdgeSet& s : family) {
    max_psi = std::max(max_psi, PsiWorstCase(q, s, M, B));
  }
  return max_psi;
}

BoundReport PredictBoundExact(const JoinQuery& q,
                              const std::vector<storage::Relation>& rels,
                              TupleCount M, TupleCount B) {
  const std::vector<Family> families = GenSFamilies(q);
  return BestFamily(
      q, families,
      [&](const EdgeSet& s) { return PsiExact(q, rels, s, M, B); }, B);
}

long double Theorem2BoundExact(const JoinQuery& q,
                               const std::vector<storage::Relation>& rels,
                               TupleCount M, TupleCount B) {
  const std::uint32_t n = q.num_edges();
  assert(n <= 20 && "query size must be constant/small");
  long double max_psi = 0.0L;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    EdgeSet s;
    for (query::EdgeId e = 0; e < n; ++e) {
      if (mask & (1u << e)) s.push_back(e);
    }
    max_psi = std::max(max_psi, PsiExact(q, rels, s, M, B));
  }
  return max_psi + LinearTerm(q, B);
}

BoundReport PredictBoundWorstCase(const JoinQuery& q, TupleCount M,
                                  TupleCount B) {
  const std::vector<Family> families = GenSFamilies(q);
  return BestFamily(
      q, families,
      [&](const EdgeSet& s) { return PsiWorstCase(q, s, M, B); }, B);
}

}  // namespace emjoin::gens
