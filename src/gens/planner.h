#ifndef EMJOIN_GENS_PLANNER_H_
#define EMJOIN_GENS_PLANNER_H_

#include <functional>
#include <vector>

#include "gens/psi.h"

namespace emjoin::gens {

/// Decides which leaf Algorithm 2 peels next (the paper's nondeterministic
/// choice, line 11). `live` is the current recursive sub-query with
/// up-to-date sizes, `rels` the live relation instances (same order as
/// `live`'s edges), and `candidates` the peelable leaves. Returns an
/// index into `candidates`.
using LeafChooser = std::function<std::size_t(
    const JoinQuery& live, const std::vector<storage::Relation>& rels,
    const std::vector<EdgeId>& candidates)>;

/// Always peels the first candidate. Deterministic baseline; corresponds
/// to one fixed branch of the nondeterministic algorithm.
LeafChooser FirstLeafChooser();

/// Worst-case cost-guided chooser, realizing the effect of the paper's
/// round-robin simulation at the level of worst-case bounds: for each
/// candidate leaf e it evaluates
///
///   bound(e) = min_{F ∈ GenSFirstPeel(Q, e)} max_{S ∈ F} Ψ̂(S)
///
/// where Ψ̂ uses the cross-product-instance LP estimate of the worst
/// subjoin size given the live relation sizes, and picks the argmin.
/// Candidates admitting no GenS branch score +∞.
LeafChooser CostGuidedChooser(TupleCount M, TupleCount B);

/// Instance-exact cost-guided chooser: like CostGuidedChooser but Ψ is
/// evaluated with the *actual* subjoin cardinalities of the live instance
/// (via the uncharged counting oracle). Distinguishes peel orders that
/// worst-case analysis cannot (e.g. the paper's compare-N2-with-N3 rule
/// on L4 responds to where the skew actually is). Costs O(total live
/// tuples) oracle work per choice.
LeafChooser ExactCostGuidedChooser(TupleCount M, TupleCount B);

/// The bound(e) evaluation used by CostGuidedChooser, exposed for tests
/// and the io_planner example. Returns +infinity when no GenS branch
/// peels `leaf` first.
long double BoundIfPeeledFirst(const JoinQuery& live, EdgeId leaf,
                               TupleCount M, TupleCount B);

/// Instance-exact variant of BoundIfPeeledFirst.
long double BoundIfPeeledFirstExact(const JoinQuery& live,
                                    const std::vector<storage::Relation>& rels,
                                    EdgeId leaf, TupleCount M, TupleCount B);

}  // namespace emjoin::gens

#endif  // EMJOIN_GENS_PLANNER_H_
