#ifndef EMJOIN_GENS_PSI_H_
#define EMJOIN_GENS_PSI_H_

#include <utility>
#include <vector>

#include "extmem/device.h"
#include "gens/gens.h"
#include "storage/relation.h"

namespace emjoin::gens {

/// Ψ(R, S): the minimum I/O cost of computing the subjoin on S, eq. (8):
///
///   Ψ(R, S) = Π_{S' ∈ C(S)} |⋈_{e ∈ S'} R(e)|  /  (M^{|S|-1} B)
///
/// with C(S) the connected components of S. Subjoin sizes are computed
/// exactly by the (uncharged) counting oracle. Ψ(R, ∅) = 0.
long double PsiExact(const JoinQuery& q,
                     const std::vector<storage::Relation>& rels,
                     const EdgeSet& subset, TupleCount M, TupleCount B);

/// Worst-case Ψ over all instances with the given relation sizes: subjoin
/// sizes are replaced by the AGM bound of each connected component.
long double PsiWorstCase(const JoinQuery& q, const EdgeSet& subset,
                         TupleCount M, TupleCount B);

/// max_{S ∈ family} Ψ(R, S).
long double FamilyMaxPsiExact(const JoinQuery& q,
                              const std::vector<storage::Relation>& rels,
                              const Family& family, TupleCount M,
                              TupleCount B);

long double FamilyMaxPsiWorstCase(const JoinQuery& q, const Family& family,
                                  TupleCount M, TupleCount B);

/// The bound of Theorem 3 evaluated on one instance (or, for the
/// worst-case variant, on the size vector): min over GenS families of the
/// max Ψ term, plus the linear Õ(ΣN/B) scan term.
struct BoundReport {
  Family best_family;
  long double max_psi = 0.0L;
  long double linear_term = 0.0L;
  /// max_psi + linear_term.
  long double bound = 0.0L;
  /// Ψ per subset of the best family, sorted descending by Ψ.
  std::vector<std::pair<EdgeSet, long double>> terms;
};

BoundReport PredictBoundExact(const JoinQuery& q,
                              const std::vector<storage::Relation>& rels,
                              TupleCount M, TupleCount B);

BoundReport PredictBoundWorstCase(const JoinQuery& q, TupleCount M,
                                  TupleCount B);

/// The coarser Theorem 2 bound: max Ψ over *all* subsets of E (any
/// branch of the nondeterministic algorithm satisfies it). Always at
/// least the Theorem 3 bound; the gap is what the GenS machinery buys.
long double Theorem2BoundExact(const JoinQuery& q,
                               const std::vector<storage::Relation>& rels,
                               TupleCount M, TupleCount B);

}  // namespace emjoin::gens

#endif  // EMJOIN_GENS_PSI_H_
