#include "gens/lp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace emjoin::gens {

long double SolveLpMax(const std::vector<std::vector<long double>>& a,
                       const std::vector<long double>& b,
                       const std::vector<long double>& c) {
  const std::size_t m = a.size();     // constraints
  const std::size_t n = c.size();     // variables
  assert(b.size() == m);
  constexpr long double kEps = 1e-12L;

  // Tableau: rows 0..m-1 are constraints with slack columns, row m is the
  // objective (negated coefficients; maximize).
  const std::size_t cols = n + m + 1;
  std::vector<std::vector<long double>> t(m + 1,
                                          std::vector<long double>(cols, 0));
  for (std::size_t i = 0; i < m; ++i) {
    assert(a[i].size() == n);
    for (std::size_t j = 0; j < n; ++j) t[i][j] = a[i][j];
    t[i][n + i] = 1.0L;
    t[i][cols - 1] = b[i];
    assert(b[i] >= 0.0L);
  }
  for (std::size_t j = 0; j < n; ++j) t[m][j] = -c[j];

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = n + i;

  for (;;) {
    // Bland's rule: smallest-index entering column with negative cost.
    std::size_t pivot_col = cols - 1;
    for (std::size_t j = 0; j + 1 < cols; ++j) {
      if (t[m][j] < -kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col == cols - 1) break;  // optimal

    // Ratio test, Bland tie-break on basis index.
    std::size_t pivot_row = m;
    long double best_ratio = std::numeric_limits<long double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][pivot_col] > kEps) {
        const long double ratio = t[i][cols - 1] / t[i][pivot_col];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (pivot_row == m || basis[i] < basis[pivot_row]))) {
          best_ratio = ratio;
          pivot_row = i;
        }
      }
    }
    assert(pivot_row != m && "LP must be bounded for our instances");

    // Pivot.
    const long double pv = t[pivot_row][pivot_col];
    for (std::size_t j = 0; j < cols; ++j) t[pivot_row][j] /= pv;
    for (std::size_t i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      const long double f = t[i][pivot_col];
      if (std::fabs(static_cast<double>(f)) < static_cast<double>(kEps)) {
        continue;
      }
      for (std::size_t j = 0; j < cols; ++j) {
        t[i][j] -= f * t[pivot_row][j];
      }
    }
    basis[pivot_row] = pivot_col;
  }
  return t[m][cols - 1];
}

long double MaxCrossProductSubjoin(const query::JoinQuery& q,
                                   const std::vector<query::EdgeId>& subset) {
  if (subset.empty()) return 1.0L;
  // An empty relation anywhere makes the (reduced) instance empty: every
  // subjoin over a fully reduced instance is then empty as well, so the
  // worst case is 0 and the LP (log of sizes) does not apply.
  for (query::EdgeId e = 0; e < q.num_edges(); ++e) {
    if (q.size(e) == 0) return 0.0L;
  }
  // Variables: y_v = log z(v) >= 0 for every attribute of q.
  const std::vector<query::AttrId> attrs = q.attrs();
  auto var_of = [&](query::AttrId a) {
    return static_cast<std::size_t>(
        std::find(attrs.begin(), attrs.end(), a) - attrs.begin());
  };

  std::vector<std::vector<long double>> a;
  std::vector<long double> b;
  for (query::EdgeId e = 0; e < q.num_edges(); ++e) {
    assert(q.size(e) > 0);
    std::vector<long double> row(attrs.size(), 0.0L);
    for (query::AttrId v : q.edge(e).attrs()) row[var_of(v)] = 1.0L;
    a.push_back(std::move(row));
    b.push_back(std::log(static_cast<long double>(q.size(e))));
  }

  std::vector<long double> c(attrs.size(), 0.0L);
  for (query::EdgeId e : subset) {
    for (query::AttrId v : q.edge(e).attrs()) c[var_of(v)] = 1.0L;
  }

  const long double log_opt = SolveLpMax(a, b, c);
  return std::exp(log_opt);
}

}  // namespace emjoin::gens
