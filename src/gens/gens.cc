#include "gens/gens.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>

#include "query/classify.h"

namespace emjoin::gens {

namespace {

EdgeSet Sorted(EdgeSet s) {
  std::sort(s.begin(), s.end());
  return s;
}

Family Canonical(std::set<EdgeSet> subsets) {
  return Family(subsets.begin(), subsets.end());
}

// All subsets of `edges`, optionally excluding the full set.
std::vector<EdgeSet> AllSubsets(const std::vector<EdgeId>& edges,
                                bool exclude_full) {
  std::vector<EdgeSet> out;
  const std::size_t n = edges.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    if (exclude_full && mask + 1 == (std::size_t{1} << n)) continue;
    EdgeSet s;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) s.push_back(edges[i]);
    }
    out.push_back(Sorted(std::move(s)));
  }
  return out;
}

EdgeSet UnionSets(const EdgeSet& a, const EdgeSet& b) {
  EdgeSet u = a;
  u.insert(u.end(), b.begin(), b.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

// True if every subset of `a` also occurs in `b` (families are sorted).
bool FamilyIsSubsetOf(const Family& a, const Family& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

// Keeps only minimal families: a family that is a superset of another can
// never win the min-max cost, for any instance. Controls the
// doubly-exponential branch blowup.
void PruneSupersetFamilies(std::set<Family>* families) {
  std::vector<Family> keep;
  for (const Family& f : *families) {
    bool dominated = false;
    for (const Family& g : *families) {
      if (&f != &g && FamilyIsSubsetOf(g, f) && g != f) {
        dominated = true;
        break;
      }
    }
    if (!dominated) keep.push_back(f);
  }
  families->clear();
  families->insert(keep.begin(), keep.end());
}

// Families are expressed in the *local* edge ids of the sub-query they
// were computed for; Translate maps them through an id mapping.
Family Translate(const Family& f, const std::vector<EdgeId>& mapping) {
  std::set<EdgeSet> out;
  for (const EdgeSet& s : f) {
    EdgeSet t;
    t.reserve(s.size());
    for (EdgeId e : s) t.push_back(mapping[e]);
    out.insert(Sorted(std::move(t)));
  }
  return Canonical(std::move(out));
}

class GenSEngine {
 public:
  explicit GenSEngine(bool prune) : prune_(prune) {}

  // Families of q, in q's local edge ids.
  const std::vector<Family>& Families(const query::JoinQuery& q) {
    const std::string key = Key(q);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    std::set<Family> out;
    Compute(q, &out);
    if (prune_) PruneSupersetFamilies(&out);
    return memo_
        .emplace(key, std::vector<Family>(out.begin(), out.end()))
        .first->second;
  }

  // Branches of q whose first peel involves local edge `target`.
  std::vector<Family> FamiliesFirstPeel(const query::JoinQuery& q,
                                        EdgeId target) {
    // Drop buds first, tracking the target.
    query::JoinQuery work = q;
    EdgeId live_target = target;
    for (;;) {
      const std::vector<EdgeId> buds =
          query::EdgesOfKind(work, query::EdgeKind::kBud);
      if (buds.empty()) break;
      const EdgeId b = buds.front();
      if (b == live_target) return {};
      if (b < live_target) --live_target;
      work = work.WithoutEdge(b);
      // Accumulate nothing: mapping is identity-shift and families below
      // are translated against `q` via bud-corrected ids.
      bud_shift_.push_back(b);
    }

    std::set<Family> out;
    const std::vector<query::Star> stars = query::FindStars(work);
    if (!stars.empty()) {
      for (const query::Star& star : stars) {
        if (std::find(star.petals.begin(), star.petals.end(), live_target) !=
            star.petals.end()) {
          StarBranch(work, star, &out);
        }
      }
    } else {
      const query::EdgeKind kind = query::ClassifyEdge(work, live_target);
      if (kind == query::EdgeKind::kIsland ||
          kind == query::EdgeKind::kLeaf) {
        LeafBranch(work, live_target, &out);
      }
    }
    if (prune_) PruneSupersetFamilies(&out);

    // Translate back through the bud removals to q's ids.
    std::vector<Family> result(out.begin(), out.end());
    for (auto it = bud_shift_.rbegin(); it != bud_shift_.rend(); ++it) {
      const EdgeId b = *it;
      for (Family& f : result) {
        for (EdgeSet& s : f) {
          for (EdgeId& e : s) {
            if (e >= b) ++e;
          }
        }
      }
    }
    bud_shift_.clear();
    return result;
  }

 private:
  static std::string Key(const query::JoinQuery& q) {
    std::ostringstream os;
    for (query::EdgeId e = 0; e < q.num_edges(); ++e) {
      for (query::AttrId a : q.edge(e).attrs()) os << a << ",";
      os << ";";
    }
    return os.str();
  }

  // Id mapping of WithoutEdge-style removals: surviving local index ->
  // original local index.
  static std::vector<EdgeId> WithoutMapping(
      std::uint32_t n, const std::vector<EdgeId>& removed) {
    std::vector<bool> drop(n, false);
    for (EdgeId e : removed) drop[e] = true;
    std::vector<EdgeId> mapping;
    for (EdgeId e = 0; e < n; ++e) {
      if (!drop[e]) mapping.push_back(e);
    }
    return mapping;
  }

  static query::JoinQuery Without(const query::JoinQuery& q,
                                  const std::vector<EdgeId>& removed) {
    std::vector<bool> drop(q.num_edges(), false);
    for (EdgeId e : removed) drop[e] = true;
    query::JoinQuery out;
    for (EdgeId e = 0; e < q.num_edges(); ++e) {
      if (!drop[e]) out.AddRelation(q.edge(e), q.size(e));
    }
    return out;
  }

  void Compute(const query::JoinQuery& q, std::set<Family>* out) {
    if (q.num_edges() == 0) {
      out->insert(Family{EdgeSet{}});
      return;
    }
    const std::vector<EdgeId> buds =
        query::EdgesOfKind(q, query::EdgeKind::kBud);
    if (!buds.empty()) {
      const EdgeId b = buds.front();
      const std::vector<EdgeId> mapping =
          WithoutMapping(q.num_edges(), {b});
      for (const Family& f : Families(Without(q, {b}))) {
        out->insert(Translate(f, mapping));
      }
      return;
    }
    const std::vector<query::Star> stars = query::FindStars(q);
    if (!stars.empty()) {
      for (const query::Star& star : stars) StarBranch(q, star, out);
      return;
    }
    std::vector<EdgeId> candidates =
        query::EdgesOfKind(q, query::EdgeKind::kIsland);
    const std::vector<EdgeId> leaves =
        query::EdgesOfKind(q, query::EdgeKind::kLeaf);
    candidates.insert(candidates.end(), leaves.begin(), leaves.end());
    assert(!candidates.empty() &&
           "acyclic queries always have an island, bud, or leaf (Lemma 1)");
    for (EdgeId e : candidates) LeafBranch(q, e, out);
  }

  // GenS island/leaf peel: family = F ∪ { S ∪ {e} : S ∈ F }.
  void LeafBranch(const query::JoinQuery& q, EdgeId e,
                  std::set<Family>* out) {
    const std::vector<EdgeId> mapping = WithoutMapping(q.num_edges(), {e});
    for (const Family& f : Families(Without(q, {e}))) {
      const Family tf = Translate(f, mapping);
      std::set<EdgeSet> subsets(tf.begin(), tf.end());
      for (const EdgeSet& s : tf) subsets.insert(UnionSets(s, {e}));
      out->insert(Canonical(std::move(subsets)));
    }
  }

  // GenS star peel, eq. (13).
  void StarBranch(const query::JoinQuery& q, const query::Star& star,
                  std::set<Family>* out) {
    std::vector<EdgeId> star_local = star.petals;
    star_local.push_back(star.core);

    const std::vector<EdgeId> map_without_x =
        WithoutMapping(q.num_edges(), star_local);
    const std::vector<EdgeId> map_without_petals =
        WithoutMapping(q.num_edges(), star.petals);

    std::vector<EdgeId> star_ids = star.petals;
    star_ids.push_back(star.core);
    const std::vector<EdgeSet> two_to_x = AllSubsets(star_ids, false);
    const std::vector<EdgeSet> petal_subsets = AllSubsets(star.petals, false);
    const std::vector<EdgeSet> petal_proper = AllSubsets(star.petals, true);

    const std::vector<Family>& f1_set = Families(Without(q, star_local));
    const std::vector<Family> f1_translated = [&] {
      std::vector<Family> v;
      for (const Family& f : f1_set) v.push_back(Translate(f, map_without_x));
      return v;
    }();
    const std::vector<Family>& f2_set = Families(Without(q, star.petals));
    const std::vector<Family> f2_translated = [&] {
      std::vector<Family> v;
      for (const Family& f : f2_set) {
        v.push_back(Translate(f, map_without_petals));
      }
      return v;
    }();

    for (const Family& f1 : f1_translated) {
      for (const Family& f2 : f2_translated) {
        std::set<EdgeSet> subsets(two_to_x.begin(), two_to_x.end());
        for (const EdgeSet& f : petal_subsets) {
          for (const EdgeSet& s : f1) subsets.insert(UnionSets(f, s));
        }
        for (const EdgeSet& f : petal_proper) {
          for (const EdgeSet& s : f2) subsets.insert(UnionSets(f, s));
        }
        out->insert(Canonical(std::move(subsets)));
      }
    }
  }

  bool prune_;
  std::map<std::string, std::vector<Family>> memo_;
  std::vector<EdgeId> bud_shift_;
};

}  // namespace

std::vector<Family> GenSFamilies(const JoinQuery& q, bool prune_supersets) {
  assert(q.IsBergeAcyclic());
  GenSEngine engine(prune_supersets);
  return engine.Families(q);
}

std::vector<Family> GenSFamiliesFirstPeel(const JoinQuery& q, EdgeId target) {
  assert(q.IsBergeAcyclic());
  GenSEngine engine(/*prune=*/true);
  return engine.FamiliesFirstPeel(q, target);
}

Family PruneDominated(const JoinQuery& q, const Family& family) {
  // Rule: S ∪ {e} is dominated by S when every attribute of e is already
  // present in S's attributes (the extra relation's tuple is determined,
  // so the subjoin cannot grow, while the denominator gains a factor M).
  auto attrs_of = [&](const EdgeSet& s) {
    std::vector<query::AttrId> attrs;
    for (EdgeId e : s) {
      for (query::AttrId a : q.edge(e).attrs()) {
        if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
          attrs.push_back(a);
        }
      }
    }
    return attrs;
  };

  Family kept;
  for (const EdgeSet& s : family) {
    bool dominated = false;
    for (EdgeId e : s) {
      EdgeSet without;
      for (EdgeId x : s) {
        if (x != e) without.push_back(x);
      }
      if (without.empty()) continue;
      const std::vector<query::AttrId> attrs = attrs_of(without);
      bool covered = true;
      for (query::AttrId a : q.edge(e).attrs()) {
        if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
          covered = false;
          break;
        }
      }
      if (covered &&
          std::find(family.begin(), family.end(), without) != family.end()) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(s);
  }
  return kept;
}

std::string FamilyToString(const Family& family) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < family.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{";
    for (std::size_t j = 0; j < family[i].size(); ++j) {
      if (j > 0) os << ",";
      os << "e" << family[i][j] + 1;  // 1-based like the paper
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace emjoin::gens
