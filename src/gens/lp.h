#ifndef EMJOIN_GENS_LP_H_
#define EMJOIN_GENS_LP_H_

#include <vector>

#include "query/hypergraph.h"

namespace emjoin::gens {

/// Maximize c·y subject to A·y <= b, y >= 0, with b >= 0 (so the slack
/// basis is feasible). Dense primal simplex with Bland's rule; intended
/// for the tiny LPs arising from constant-size queries. Returns the
/// optimal objective value (the problem is always bounded in our use:
/// every variable appears in some constraint with b finite).
long double SolveLpMax(const std::vector<std::vector<long double>>& a,
                       const std::vector<long double>& b,
                       const std::vector<long double>& c);

/// The largest subjoin size ⋈_{e∈subset} R(e) achievable by a *fully
/// reduced cross-product instance* of `q` honoring all size bounds N(e):
/// choose per-attribute domain sizes z(v) ≥ 1 with Π_{v∈e} z(v) ≤ N(e)
/// for every e ∈ E (every relation is the cross product of its domains,
/// which is automatically fully reduced), maximizing Π_{v ∈ attrs(subset)}
/// z(v). Solved as an LP in log z. This matches the paper's lower-bound
/// constructions (Theorems 4–7 are all of this form) and is tighter than
/// the per-component AGM bound, which ignores the size constraints of
/// relations outside the subset.
long double MaxCrossProductSubjoin(const query::JoinQuery& q,
                                   const std::vector<query::EdgeId>& subset);

}  // namespace emjoin::gens

#endif  // EMJOIN_GENS_LP_H_
