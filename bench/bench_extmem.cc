// Experiment E13: substrate microbenchmarks (google-benchmark).
// Validates the external-memory simulator itself: scan charges N/B,
// external sort charges (passes+1) * 2N/B, semijoin is linear; and
// reports wall-clock throughput of the simulated operators.
#include <benchmark/benchmark.h>

#include "core/reduce.h"
#include "extmem/sorter.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

void BM_SequentialScan(benchmark::State& state) {
  const TupleCount n = state.range(0);
  extmem::Device dev(1024, 64);
  const storage::Relation rel = workload::Matching(&dev, 0, 1, n);
  std::uint64_t ios = 0;
  for (auto _ : state) {
    const extmem::IoStats before = dev.stats();
    extmem::FileReader reader(rel.range());
    Value sum = 0;
    while (!reader.Done()) sum += reader.Next()[0];
    benchmark::DoNotOptimize(sum);
    ios = (dev.stats() - before).total();
  }
  state.counters["io"] = static_cast<double>(ios);
  state.counters["io_per_NB"] =
      static_cast<double>(ios) / (static_cast<double>(n) / dev.B());
}
BENCHMARK(BM_SequentialScan)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_ExternalSort(benchmark::State& state) {
  const TupleCount n = state.range(0);
  extmem::Device dev(1024, 64);
  std::vector<storage::Tuple> rows;
  rows.reserve(n);
  std::uint64_t x = 88172645463325252ull;
  for (TupleCount i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rows.push_back({x % 100000, i});
  }
  const storage::Relation rel = storage::Relation::FromTuples(
      &dev, storage::Schema({0, 1}), rows);
  std::uint64_t ios = 0;
  for (auto _ : state) {
    const extmem::IoStats before = dev.stats();
    benchmark::DoNotOptimize(rel.SortedBy(0));
    ios = (dev.stats() - before).total();
  }
  const double passes =
      static_cast<double>(extmem::MergePassesFor(dev, n)) + 1.0;
  state.counters["io"] = static_cast<double>(ios);
  state.counters["io_per_pass2NB"] =
      static_cast<double>(ios) /
      (passes * 2.0 * static_cast<double>(n) / dev.B());
}
BENCHMARK(BM_ExternalSort)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_SemiJoin(benchmark::State& state) {
  const TupleCount n = state.range(0);
  extmem::Device dev(1024, 64);
  const storage::Relation rel = workload::ManyToOne(&dev, 0, 1, n, n / 4);
  const storage::Relation filter =
      workload::Matching(&dev, 1, 2, n / 2);
  std::uint64_t ios = 0;
  for (auto _ : state) {
    const extmem::IoStats before = dev.stats();
    benchmark::DoNotOptimize(core::SemiJoin(rel, filter, 1));
    ios = (dev.stats() - before).total();
  }
  state.counters["io"] = static_cast<double>(ios);
}
BENCHMARK(BM_SemiJoin)->Arg(1 << 12)->Arg(1 << 15);

void BM_FullReduceL5(benchmark::State& state) {
  const TupleCount n = state.range(0);
  extmem::Device dev(1024, 64);
  std::vector<storage::Relation> rels;
  for (std::uint32_t i = 0; i < 5; ++i) {
    rels.push_back(workload::ManyToOne(&dev, i, i + 1, n, n / 2));
  }
  std::uint64_t ios = 0;
  for (auto _ : state) {
    const extmem::IoStats before = dev.stats();
    benchmark::DoNotOptimize(core::FullyReduce(rels));
    ios = (dev.stats() - before).total();
  }
  state.counters["io"] = static_cast<double>(ios);
  state.counters["io_per_NB"] =
      static_cast<double>(ios) / (5.0 * static_cast<double>(n) / dev.B());
}
BENCHMARK(BM_FullReduceL5)->Arg(1 << 12)->Arg(1 << 15);

}  // namespace
}  // namespace emjoin

BENCHMARK_MAIN();
