// Experiment E13: substrate microbenchmarks.
// Validates the external-memory simulator itself: scan charges N/B,
// external sort charges (passes+1) * 2N/B, semijoin is linear; and
// reports wall-clock throughput of the simulated operators.
//
// Usage: bench_extmem [--json[=PATH]] [--no-json] [--reps=K]
//                     [--metrics=PATH] [--audit=PATH] [--trace...]
// Machine-readable results go to BENCH_extmem.json by default (schema
// documented on bench::Reporter); --no-json disables the file. All
// shared flags are parsed by bench::ParseBenchFlags.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/reduce.h"
#include "extmem/sorter.h"
#include "storage/relation.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

std::vector<storage::Tuple> RandomRows(TupleCount n) {
  std::vector<storage::Tuple> rows;
  rows.reserve(n);
  std::uint64_t x = 88172645463325252ull;
  for (TupleCount i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rows.push_back({x % 100000, i});
  }
  return rows;
}

void BenchScan(bench::Reporter* reporter, TupleCount n, int reps) {
  extmem::Device dev(1024, 64);
  const storage::Relation rel = workload::Matching(&dev, 0, 1, n);
  reporter->Measure("scan", &dev, n, reps, [&]() -> std::uint64_t {
    extmem::FileReader reader(rel.range());
    Value sum = 0;
    TupleCount count = 0;
    while (!reader.Done()) {
      const std::span<const Value> block = reader.NextBlock();
      for (std::size_t off = 0; off < block.size(); off += 2) {
        sum += block[off];
        ++count;
      }
    }
    asm volatile("" ::"r"(sum));
    return count;
  });
}

void BenchSort(bench::Reporter* reporter, TupleCount n, int reps) {
  extmem::Device dev(1024, 64);
  const storage::Relation rel = storage::Relation::FromTuples(
      &dev, storage::Schema({0, 1}), RandomRows(n));
  const std::uint32_t key[1] = {0};
  reporter->Measure("sort", &dev, n, reps, [&]() -> std::uint64_t {
    extmem::FilePtr sorted = extmem::ExternalSort(rel.range(), key);
    return sorted->size();
  });
}

void BenchSemiJoin(bench::Reporter* reporter, TupleCount n, int reps) {
  extmem::Device dev(1024, 64);
  const storage::Relation rel = workload::ManyToOne(&dev, 0, 1, n, n / 4);
  const storage::Relation filter = workload::Matching(&dev, 1, 2, n / 2);
  reporter->Measure("semijoin", &dev, n, reps, [&]() -> std::uint64_t {
    return core::SemiJoin(rel, filter, 1).size();
  });
}

void BenchFullReduceL5(bench::Reporter* reporter, TupleCount n, int reps) {
  extmem::Device dev(1024, 64);
  std::vector<storage::Relation> rels;
  for (std::uint32_t i = 0; i < 5; ++i) {
    rels.push_back(workload::ManyToOne(&dev, i, i + 1, n, n / 2));
  }
  reporter->Measure("full_reduce_l5", &dev, n, reps, [&]() -> std::uint64_t {
    const std::vector<storage::Relation> reduced = core::FullyReduce(rels);
    std::uint64_t total = 0;
    for (const storage::Relation& r : reduced) total += r.size();
    return total;
  });
}

int Run(int argc, char** argv) {
  // --json/--reps/--metrics/--trace are stripped by ParseBenchFlags;
  // anything left is an error.
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return 2;
  }
  const int reps = bench::GlobalBenchConfig().reps;

  bench::Banner("E13: substrate microbenchmarks",
                "Wall-clock and I/O cost of the external-memory substrate's "
                "hot loops (scan, external sort, semijoin, full reduction). "
                "I/O counts follow the Aggarwal-Vitter model exactly; wall "
                "clock tracks the block-batched implementation.");

  bench::Reporter& reporter = bench::GlobalReporter();
  BenchScan(&reporter, TupleCount{1} << 18, reps);
  BenchScan(&reporter, TupleCount{1} << 20, reps);
  BenchSort(&reporter, TupleCount{1} << 12, reps);
  BenchSort(&reporter, TupleCount{1} << 15, reps);
  BenchSort(&reporter, TupleCount{1} << 18, reps);
  BenchSemiJoin(&reporter, TupleCount{1} << 15, reps);
  BenchSemiJoin(&reporter, TupleCount{1} << 18, reps);
  BenchFullReduceL5(&reporter, TupleCount{1} << 12, reps);
  BenchFullReduceL5(&reporter, TupleCount{1} << 15, reps);
  reporter.PrintTable();
  return bench::FinishBench();
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "extmem",
                                      /*default_reps=*/3)) {
    return 2;
  }
  return emjoin::Run(argc, argv);
}
