// Experiment T1.2 (Table 1 / Theorem 1): 3-relation line join.
// Claim: Algorithm 1 runs in Õ(N1*N3/(MB) + ΣN/B) — the AGM numerator
// N1*N3 with denominator M*B — and is worst-case optimal.
#include "bench/bench_util.h"
#include "core/acyclic_join.h"
#include "core/line3.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

void Run() {
  bench::Banner("T1.2 line join L3 on the Figure 3 worst case",
                "paper: Õ(N1*N3/(MB)); both Algorithm 1 and the general "
                "Algorithm 2 must track the bound with a constant ratio");
  bench::Table table({"N", "M", "B", "results", "alg1_io", "alg2_io",
                      "bound=N^2/MB+3N/B", "alg1/bound", "alg2/bound"});
  for (const auto& [n, m, b] :
       std::vector<std::tuple<TupleCount, TupleCount, TupleCount>>{
           {512, 64, 8},
           {1024, 64, 8},
           {2048, 64, 8},
           {4096, 64, 8},
           {2048, 128, 8},
           {2048, 256, 8},
           {2048, 128, 16},
           {2048, 128, 32}}) {
    extmem::Device dev1(m, b), dev2(m, b);
    const auto rels1 = workload::L3WorstCase(&dev1, n, 1, n);
    const auto rels2 = workload::L3WorstCase(&dev2, n, 1, n);

    const double bound = static_cast<double>(n) * n / (m * b) +
                         3.0 * static_cast<double>(n) / b;
    const bench::Measured alg1 = bench::MeasureJoin(
        &dev1,
        [&](auto emit) {
          core::LineJoin3(rels1[0], rels1[1], rels1[2], emit);
        },
        bench::InternSpanName("alg1_L3 N=" + std::to_string(n)), bound);
    const bench::Measured alg2 = bench::MeasureJoin(
        &dev2, [&](auto emit) { core::AcyclicJoin(rels2, emit); },
        bench::InternSpanName("alg2_L3 N=" + std::to_string(n)), bound);
    table.AddRow({bench::U(n), bench::U(m), bench::U(b),
                  bench::U(alg1.results), bench::U(alg1.ios),
                  bench::U(alg2.ios), bench::F(bound),
                  bench::F(alg1.ios / bound), bench::F(alg2.ios / bound)});
  }
  table.Print();
  std::printf(
      "\nShape check: ratios stay flat across N, M and B => the measured\n"
      "cost scales as N1*N3/(MB), matching Theorem 1.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "table1_line3")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
