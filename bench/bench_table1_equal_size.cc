// Experiment T1.8 (Theorem 7): acyclic joins with equal relation sizes.
// Claim: with N(e) = N for all e and minimum edge cover number c, the
// cost is Õ((N/M)^c · M/B), optimal via the vertex-packing instance.
#include <cmath>

#include "bench/bench_util.h"
#include "core/acyclic_join.h"
#include "query/edge_cover.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

void RunShape(const std::string& name, const query::JoinQuery& q,
              const std::vector<TupleCount>& ns, TupleCount m, TupleCount b,
              bench::Table* table) {
  const std::size_t c = query::GreedyMinEdgeCover(q).size();
  double prev_io = 0, prev_n = 0;
  for (TupleCount n : ns) {
    extmem::Device dev(m, b);
    const auto rels = workload::EqualSizeWorstCase(&dev, q, n);
    const bench::Measured meas = bench::MeasureJoin(
        &dev, [&](auto emit) { core::AcyclicJoin(rels, emit); });
    const double bound =
        std::pow(static_cast<double>(n) / m, static_cast<double>(c)) * m / b +
        static_cast<double>(q.num_edges()) * n / b;
    std::string exponent = "-";
    if (prev_io > 0) {
      exponent = bench::F(std::log(meas.ios / prev_io) /
                          std::log(static_cast<double>(n) / prev_n));
    }
    table->AddRow({name, bench::U(c), bench::U(n), bench::U(m),
                   bench::U(meas.results), bench::U(meas.ios),
                   bench::F(bound), bench::F(meas.ios / bound), exponent});
    prev_io = static_cast<double>(meas.ios);
    prev_n = static_cast<double>(n);
  }
}

void Run() {
  bench::Banner("T1.8 equal-size acyclic joins (Theorem 7)",
                "paper: Õ((N/M)^c · M/B) where c = minimum edge cover "
                "number; the measured growth exponent in N must approach c");
  bench::Table table({"query", "c", "N", "M", "results", "measured_io",
                      "(N/M)^c*M/B", "io/bound", "growth_exp"});
  const TupleCount m = 32, b = 8;
  RunShape("L3", query::JoinQuery::Line(3), {256, 512, 1024}, m, b, &table);
  RunShape("L5", query::JoinQuery::Line(5), {64, 128, 256}, m, b, &table);
  RunShape("star3", query::JoinQuery::Star(3), {64, 128, 256}, m, b, &table);
  RunShape("lollipop2", query::JoinQuery::Lollipop(2), {64, 128, 256}, m, b,
           &table);
  table.Print();
  std::printf(
      "\nShape check: growth_exp approaches c for each query class and\n"
      "the io/bound ratio stays in one constant band.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "table1_equal_size")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
