// Experiment T1.6 (§6.3, Appendix A.3, Algorithm 5): unbalanced L7.
// Claim: with alternating optimal cover and a broken balance condition
// (here (b): N1N3N5 < N2N4), Algorithm 5 (materialize R3⋈R4⋈R5, then
// AcyclicJoin on the composed 5-edge query) beats running Algorithm 2
// directly, and the dispatcher picks the right algorithm.
#include "bench/bench_util.h"
#include "core/acyclic_join.h"
#include "core/dispatch.h"
#include "core/unbalanced7.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

// Unbalanced-middle L7: the prefix e1..e5 uses the matching-ends /
// cross-product-middle construction that forces Algorithm 2's {e2,e4}
// pair term (condition (b) N1N3N5 < N2N4 breaks for z2 > 1); e6 and e7
// are matchings over dom(v6).
std::vector<storage::Relation> UnbalancedL7(extmem::Device* dev, TupleCount k,
                                            TupleCount z1, TupleCount z2) {
  std::vector<storage::Relation> rels;
  rels.push_back(workload::Matching(dev, 0, 1, k));
  rels.push_back(workload::CrossProduct(dev, 1, 2, k, z1));
  rels.push_back(workload::ManyToOne(dev, 2, 3, z1, z2));
  rels.push_back(workload::CrossProduct(dev, 3, 4, z2, k));
  rels.push_back(workload::Matching(dev, 4, 5, k));
  rels.push_back(workload::Matching(dev, 5, 6, k));
  rels.push_back(workload::Matching(dev, 6, 7, k));
  return rels;
}

void Run() {
  bench::Banner("T1.6 unbalanced L7: Algorithm 5 vs Algorithm 2",
                "paper A.3: when a balancing condition of the alternating "
                "cover breaks, Algorithm 5 is optimal");
  bench::Table table({"z2", "results", "alg5_io", "alg5_bound", "io/bound",
                      "alg2_io", "alg2/alg5", "auto_algorithm"});
  const TupleCount m = 64, b = 8, k = 128, z1 = 128;
  for (TupleCount z2 : {2, 8, 32, 64, 128, 256}) {
    extmem::Device dev5(m, b), dev2(m, b), deva(m, b);
    const auto rels5 = UnbalancedL7(&dev5, k, z1, z2);
    const auto rels2 = UnbalancedL7(&dev2, k, z1, z2);
    const auto relsa = UnbalancedL7(&deva, k, z1, z2);

    // Appendix A.3 closed form: |S| = |R3 ⋈ R4 ⋈ R5| = z1*k, then the
    // acyclic join over {R1, R2, S, R6, R7} is dominated by the
    // independent set {R1, S, R7}: N1|S|N7/(M^2 B), plus materializing
    // and re-reading S and the linear input scans.
    const double s_size = static_cast<double>(z1) * k;
    const double alg5_bound =
        static_cast<double>(k) * s_size * k /
            (static_cast<double>(m) * m * b) +
        3.0 * s_size / b +
        static_cast<double>(k + k * z1 + z1 + z2 * k + 3 * k) / b;
    const bench::Measured alg5 = bench::MeasureJoin(
        &dev5, [&](auto emit) { core::LineJoinUnbalanced7(rels5, emit); },
        bench::InternSpanName("alg5_L7 z2=" + std::to_string(z2)),
        alg5_bound, z2);
    const bench::Measured alg2 = bench::MeasureJoin(
        &dev2, [&](auto emit) { core::AcyclicJoin(rels2, emit); },
        bench::InternSpanName("alg2_L7u z2=" + std::to_string(z2)), -1.0L,
        z2);
    core::CountingSink sink;
    const core::AutoJoinReport report = core::JoinAuto(relsa, sink.AsEmitFn());

    table.AddRow({bench::U(z2), bench::U(alg5.results),
                  bench::U(alg5.ios), bench::F(alg5_bound),
                  bench::F(alg5.ios / alg5_bound), bench::U(alg2.ios),
                  bench::F(static_cast<double>(alg2.ios) / alg5.ios),
                  report.algorithm});
  }
  table.Print();
  std::printf(
      "\nShape check: Algorithm 2's cost follows the growing {e2,e4} pair\n"
      "term while Algorithm 5's grows only ~linearly in N4; the measured\n"
      "crossover sits near z2 = 32 at this scale and Algorithm 5 wins by\n"
      "a widening factor beyond it. The dispatcher (cover alternating,\n"
      "condition (b) broken) routes every unbalanced case to Algorithm 5.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "line7_unbalanced")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
