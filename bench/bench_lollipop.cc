// Experiment E11 (§7.2): lollipop joins.
// Claim: Algorithm 2 is optimal on lollipops; the right star to peel
// first depends on comparing N0 (core) with Nn (the extending petal),
// and the cost-guided executor tracks the Theorem 3 bound either way.
#include "bench/bench_util.h"
#include "core/acyclic_join.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

// Lollipop(2) instance: core {v1,v2}, petal {v1,u1}, stick {v2,v3},
// tail {v3,u2}. `core_dom` sets |dom(v1)| = |dom(v2)| = core_dom (core is
// their cross product, N0 = core_dom^2); petal/stick/tail are one-to-many
// or matchings of size n.
std::vector<storage::Relation> LollipopInstance(extmem::Device* dev,
                                                TupleCount core_dom,
                                                TupleCount n) {
  std::vector<storage::Relation> rels;
  rels.push_back(workload::CrossProduct(dev, 0, 1, core_dom, core_dom));
  rels.push_back(workload::OneToMany(dev, 0, 2, n, core_dom));   // petal
  rels.push_back(workload::OneToMany(dev, 1, 3, n, core_dom));   // stick e_n
  rels.push_back(workload::OneToMany(dev, 3, 4, n, n));          // tail
  return rels;
}

void Run() {
  bench::Banner("E11 lollipop joins (§7.2)",
                "paper: Algorithm 2 optimal for lollipops in both N0<=Nn "
                "and N0>=Nn regimes; measured I/O must track the exact "
                "Theorem 3 bound");
  bench::Table table({"regime", "core_dom", "n", "results", "measured_io",
                      "theorem3_bound", "io/bound"});
  const TupleCount m = 32, b = 8;
  for (const auto& [core_dom, n] :
       std::vector<std::pair<TupleCount, TupleCount>>{
           {1, 128},   // tiny core: N0 = 1 << Nn
           {1, 256},
           {4, 128},
           {8, 128},   // big core: N0 = 64
           {16, 128},  // N0 = 256 >= Nn pieces
           {16, 256}}) {
    extmem::Device dev(m, b);
    const auto rels = LollipopInstance(&dev, core_dom, n);
    const double bound = bench::TheoremBound(rels, dev);
    const bench::Measured meas = bench::MeasureJoin(
        &dev, [&](auto emit) { core::AcyclicJoin(rels, emit); },
        bench::InternSpanName("lollipop d=" + std::to_string(core_dom)),
        bound, n);
    const std::string regime =
        core_dom * core_dom <= n ? "N0<=Nn" : "N0>=Nn";
    table.AddRow({regime, bench::U(core_dom), bench::U(n),
                  bench::U(meas.results), bench::U(meas.ios),
                  bench::F(bound), bench::F(meas.ios / bound)});
  }
  table.Print();
  std::printf(
      "\nShape check: io/bound stays in one constant band across both\n"
      "regimes — Algorithm 2 with the cost-guided peel matches Theorem 3\n"
      "on lollipops.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "lollipop")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
