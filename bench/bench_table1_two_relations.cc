// Experiment T1.1 (Table 1, row 1): two-relation join.
// Claim: worst-case I/O is Θ(N1·N2 / (M·B)); block nested loop achieves
// it, and the §3 hybrid is additionally instance-optimal.
#include "bench/bench_util.h"
#include "core/pairwise.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

void RunWorstCase() {
  bench::Banner("T1.1 two-relation join, worst case (cross product)",
                "paper: N1*N2/(MB) I/Os, worst-case optimal (trivial row "
                "of Table 1)");
  bench::Table table({"N", "M", "B", "results", "measured_io", "N1N2/MB",
                      "ratio"});
  for (const auto& [n, m, b] :
       std::vector<std::tuple<TupleCount, TupleCount, TupleCount>>{
           {1024, 128, 16},
           {2048, 128, 16},
           {4096, 128, 16},
           {2048, 256, 16},
           {2048, 512, 16},
           {2048, 256, 32},
           {2048, 256, 64}}) {
    extmem::Device dev(m, b);
    // dom(v2) = {0}: every pair joins.
    const storage::Relation r1 = workload::ManyToOne(&dev, 0, 1, n, 1);
    const storage::Relation r2 = workload::OneToMany(&dev, 1, 2, n, 1);
    core::Assignment assignment(core::MakeResultSchema({r1, r2}));
    const bench::Measured meas = bench::MeasureJoin(&dev, [&](auto emit) {
      core::BlockNestedLoopJoin(r1, r2, &assignment, emit);
    });
    const double bound = static_cast<double>(n) * n / (m * b);
    table.AddRow({bench::U(n), bench::U(m), bench::U(b),
                  bench::U(meas.results), bench::U(meas.ios),
                  bench::F(bound), bench::F(meas.ios / bound)});
  }
  table.Print();
}

void RunInstanceOptimal() {
  bench::Banner(
      "T1.1b two-relation hybrid join on a sparse instance (§3)",
      "paper: Õ(Σ_a N1|a·N2|a/(MB) + N/B) — on a matching instance the "
      "join degenerates to a scan while nested loop still pays N1*N2/MB");
  bench::Table table(
      {"N", "M", "B", "results", "hybrid_io", "nl_io", "nl/hybrid"});
  for (TupleCount n : {1024, 4096, 16384}) {
    const TupleCount m = 256, b = 16;
    extmem::Device dev(m, b);
    const storage::Relation r1 = workload::Matching(&dev, 0, 1, n);
    const storage::Relation r2 = workload::Matching(&dev, 1, 2, n);
    core::Assignment a1(core::MakeResultSchema({r1, r2}));
    const bench::Measured hybrid = bench::MeasureJoin(&dev, [&](auto emit) {
      core::SortMergeJoin(r1, r2, &a1, emit);
    });
    core::Assignment a2(core::MakeResultSchema({r1, r2}));
    const bench::Measured nl = bench::MeasureJoin(&dev, [&](auto emit) {
      core::BlockNestedLoopJoin(r1, r2, &a2, emit);
    });
    table.AddRow({bench::U(n), bench::U(m), bench::U(b),
                  bench::U(hybrid.results), bench::U(hybrid.ios),
                  bench::U(nl.ios),
                  bench::F(static_cast<double>(nl.ios) / hybrid.ios)});
  }
  table.Print();
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "table1_two_relations")) return 2;
  emjoin::RunWorstCase();
  emjoin::RunInstanceOptimal();
  return emjoin::bench::FinishBench();
}
