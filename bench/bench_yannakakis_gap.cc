// Experiment E9 (§1.2): the emit-model gap of Yannakakis' algorithm.
// Claim: writing intermediate results makes Yannakakis Õ(|Q(R)|/B) while
// the emit-model optimum is Õ(|Q(R)|/(MB)) — a factor-M gap that widens
// linearly as M grows.
#include "bench/bench_util.h"
#include "core/acyclic_join.h"
#include "core/yannakakis.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

void RunTwoRelations() {
  bench::Banner("E9a Yannakakis vs AcyclicJoin, 2-relation cross product",
                "paper §1.2: Yannakakis is worse by a factor M in the emit "
                "model; the gap must scale ~linearly with M");
  bench::Table table({"N", "M", "B", "yann_io", "acyclic_io", "gap",
                      "gap/M"});
  const TupleCount n = 1024, b = 8;
  for (TupleCount m : {16, 32, 64, 128, 256}) {
    extmem::Device dev_y(m, b), dev_a(m, b);
    auto make = [&](extmem::Device* dev) {
      return std::vector<storage::Relation>{
          workload::ManyToOne(dev, 0, 1, n, 1),
          workload::OneToMany(dev, 1, 2, n, 1)};
    };
    const auto rels_y = make(&dev_y);
    const auto rels_a = make(&dev_a);
    const bench::Measured yann = bench::MeasureJoin(&dev_y, [&](auto emit) {
      core::YannakakisJoin(rels_y, emit);
    });
    const bench::Measured acyc = bench::MeasureJoin(&dev_a, [&](auto emit) {
      core::AcyclicJoin(rels_a, emit);
    });
    const double gap = static_cast<double>(yann.ios) / acyc.ios;
    table.AddRow({bench::U(n), bench::U(m), bench::U(b), bench::U(yann.ios),
                  bench::U(acyc.ios), bench::F(gap), bench::F(gap / m)});
  }
  table.Print();
}

void RunLine3() {
  bench::Banner("E9b Yannakakis vs Algorithm 2 on the L3 worst case",
                "the optimality gap persists beyond two relations: the "
                "pairwise framework cannot be I/O-optimal (§1)");
  bench::Table table({"N", "M", "intermediate_tuples", "yann_io",
                      "acyclic_io", "gap"});
  const TupleCount b = 8;
  for (const auto& [n, m] : std::vector<std::pair<TupleCount, TupleCount>>{
           {512, 32}, {1024, 32}, {1024, 64}, {2048, 64}, {2048, 128}}) {
    extmem::Device dev_y(m, b), dev_a(m, b);
    const auto rels_y = workload::L3WorstCase(&dev_y, n, 1, n);
    const auto rels_a = workload::L3WorstCase(&dev_a, n, 1, n);
    core::YannakakisReport yr;
    const bench::Measured yann = bench::MeasureJoin(&dev_y, [&](auto emit) {
      yr = core::YannakakisJoin(rels_y, emit);
    });
    const bench::Measured acyc = bench::MeasureJoin(&dev_a, [&](auto emit) {
      core::AcyclicJoin(rels_a, emit);
    });
    table.AddRow({bench::U(n), bench::U(m), bench::U(yr.intermediate_tuples),
                  bench::U(yann.ios), bench::U(acyc.ios),
                  bench::F(static_cast<double>(yann.ios) / acyc.ios)});
  }
  table.Print();
  std::printf(
      "\nShape check: gap/M is roughly constant in E9a (factor-M gap);\n"
      "in E9b Yannakakis' cost follows its intermediate size N^2/B.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "yannakakis_gap")) return 2;
  emjoin::RunTwoRelations();
  emjoin::RunLine3();
  return emjoin::bench::FinishBench();
}
