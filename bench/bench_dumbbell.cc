// Experiment E12 (§7.3 / A.4): dumbbell joins.
// Claim: Algorithm 2 is optimal on dumbbells under the balance condition
// (7) N_i * N_j >= N_0 * N_m; the measured cost tracks the Theorem 3
// bound across petal sizes and the two core-size orders.
#include "bench/bench_util.h"
#include "core/acyclic_join.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

// Dumbbell(2,2) instance: left core {v1,v2} = cross(dl, dl), left petal
// {v1,u}, shared petal {v2,w1}, right core {w1,w2} = cross(dr, dr),
// right petal {w2,u'}. Petals are one-to-many mappings of size n.
std::vector<storage::Relation> DumbbellInstance(extmem::Device* dev,
                                                TupleCount dl, TupleCount dr,
                                                TupleCount n) {
  std::vector<storage::Relation> rels;
  rels.push_back(workload::CrossProduct(dev, 0, 1, dl, dl));  // left core
  rels.push_back(workload::OneToMany(dev, 0, 2, n, dl));      // left petal
  rels.push_back(workload::OneToMany(dev, 1, 3, n, dl));      // shared petal
  rels.push_back(workload::CrossProduct(dev, 3, 4, dr, dr));  // right core
  rels.push_back(workload::OneToMany(dev, 4, 5, n, dr));      // right petal
  return rels;
}

void Run() {
  bench::Banner("E12 dumbbell joins (§7.3)",
                "paper: Algorithm 2 optimal under balance condition (7) "
                "N_i*N_j >= N_0*N_m; the peel order follows the core "
                "sizes as in the lollipop analysis");
  bench::Table table({"dl", "dr", "n", "balanced(7)", "results",
                      "measured_io", "theorem3_bound", "io/bound"});
  const TupleCount m = 32, b = 8;
  for (const auto& [dl, dr, n] :
       std::vector<std::tuple<TupleCount, TupleCount, TupleCount>>{
           {2, 2, 64},
           {2, 2, 128},
           {4, 2, 128},
           {4, 4, 128},
           {8, 4, 128},
           {4, 4, 256}}) {
    extmem::Device dev(m, b);
    const auto rels = DumbbellInstance(&dev, dl, dr, n);
    // Condition (7) with petal sizes n and core sizes dl^2, dr^2.
    const bool balanced =
        static_cast<double>(n) * n >=
        static_cast<double>(dl) * dl * dr * dr;
    const double bound = bench::TheoremBound(rels, dev);
    const bench::Measured meas = bench::MeasureJoin(
        &dev, [&](auto emit) { core::AcyclicJoin(rels, emit); },
        bench::InternSpanName("dumbbell " + std::to_string(dl) + "x" +
                              std::to_string(dr)),
        bound, n);
    table.AddRow({bench::U(dl), bench::U(dr), bench::U(n),
                  balanced ? "yes" : "no", bench::U(meas.results),
                  bench::U(meas.ios), bench::F(bound),
                  bench::F(meas.ios / bound)});
  }
  table.Print();
  std::printf(
      "\nShape check: on balanced dumbbells the io/bound ratio stays in a\n"
      "constant band — Algorithm 2 meets its Theorem 3 bound.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "dumbbell")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
