// Experiment T1.4 (Corollary 2 / Theorem 5): balanced L5.
// Claim: Algorithm 2's cost is the max of the independent-subset terms
// Õ(N1N3N5/(M^2 B) + N2N5/(MB) + N1N4/(MB) + N2N4/(MB)), optimal on
// balanced instances; on the alternating cross-product instance the
// N1N3N5 term dominates.
#include "bench/bench_util.h"
#include "core/acyclic_join.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

void Run() {
  bench::Banner("T1.4 balanced L5 on the Theorem 5 cross-product instance",
                "paper: Õ(N1N3N5/(M^2 B)) dominates on z = (1,N,1,N,1,N); "
                "measured I/O must track it across N and M");
  bench::Table table({"N", "M", "B", "results", "measured_io",
                      "N^3/M^2B", "theorem3_bound", "io/bound"});
  for (const auto& [n, m, b] :
       std::vector<std::tuple<TupleCount, TupleCount, TupleCount>>{
           {64, 32, 8},
           {96, 32, 8},
           {128, 32, 8},
           {160, 32, 8},
           {128, 64, 8},
           {128, 128, 8},
           {128, 64, 16}}) {
    extmem::Device dev(m, b);
    const auto rels = workload::CrossProductLine(&dev, {1, n, 1, n, 1, n});
    const double bound = bench::TheoremBound(rels, dev);
    const bench::Measured meas = bench::MeasureJoin(
        &dev, [&](auto emit) { core::AcyclicJoin(rels, emit); });
    const double headline =
        static_cast<double>(n) * n * n / (static_cast<double>(m) * m * b);
    table.AddRow({bench::U(n), bench::U(m), bench::U(b),
                  bench::U(meas.results), bench::U(meas.ios),
                  bench::F(headline), bench::F(bound),
                  bench::F(meas.ios / bound)});
  }
  table.Print();
  std::printf(
      "\nShape check: results = N^3 and I/O grows cubically in N while\n"
      "dropping quadratically in M — the N1N3N5/(M^2 B) signature.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "table1_line5")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
