// Experiment E10 (§4.4): the GenS(Q) families.
// Claim: GenS reproduces the paper's example families — eq. (4) on L3,
// the two peel-dependent families on L4, four on L5 (two better), and
// the star closure where the full set is avoidable.
#include "bench/bench_util.h"
#include "gens/gens.h"
#include "gens/psi.h"

namespace emjoin {
namespace {

void PrintFamilies(const std::string& name, const query::JoinQuery& q,
                   bool pruned_only = false) {
  std::printf("--- %s: %s ---\n", name.c_str(), q.ToString().c_str());
  const auto raw = gens::GenSFamilies(q, /*prune_supersets=*/false);
  const auto minimal = gens::GenSFamilies(q);
  std::printf("branch families: %zu raw, %zu minimal\n", raw.size(),
              minimal.size());
  const auto& families = pruned_only ? minimal : raw;
  for (const auto& f : families) {
    std::printf("  S = %s\n",
                gens::FamilyToString(gens::PruneDominated(q, f)).c_str());
  }
  std::printf("\n");
}

void PrintBound(const std::string& name, const query::JoinQuery& q,
                TupleCount m, TupleCount b) {
  const gens::BoundReport report = gens::PredictBoundWorstCase(q, m, b);
  std::printf("%s (M=%llu, B=%llu): best family %s\n", name.c_str(),
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(b),
              gens::FamilyToString(
                  gens::PruneDominated(q, report.best_family))
                  .c_str());
  std::printf("  worst-case bound = %.1Lf I/Os (max-psi %.1Lf + linear "
              "%.1Lf)\n",
              report.bound, report.max_psi, report.linear_term);
  std::printf("  dominant terms:\n");
  for (std::size_t i = 0; i < report.terms.size() && i < 4; ++i) {
    std::printf("    psi(%s) = %.1Lf\n",
                gens::FamilyToString({report.terms[i].first}).c_str(),
                report.terms[i].second);
  }
  std::printf("\n");
}

void Run() {
  bench::Banner("E10 GenS(Q) families (Algorithm 3, §4.4 examples)",
                "paper: GenS(L3) = eq. (4); two L4 families; four L5 "
                "families, two of which are better; star one-shot vs "
                "petal-by-petal branches");
  PrintFamilies("L3", query::JoinQuery::Line(3));
  PrintFamilies("L4", query::JoinQuery::Line(4));
  PrintFamilies("L5", query::JoinQuery::Line(5), true);
  PrintFamilies("Star T3", query::JoinQuery::Star(3), true);
  PrintFamilies("Lollipop(2)", query::JoinQuery::Lollipop(2), true);

  bench::Banner("E10b worst-case Theorem 3 bounds from the families",
                "the min-max over families gives each query's predicted "
                "complexity; compare with Table 1's closed forms");
  PrintBound("L3 N=(1024,1024,1024)",
             query::JoinQuery::Line(3, {1024, 1024, 1024}), 64, 8);
  PrintBound("L4 N=(1024,1024,1024,1024)",
             query::JoinQuery::Line(4, {1024, 1024, 1024, 1024}), 64, 8);
  PrintBound("L5 balanced N=all 512",
             query::JoinQuery::Line(5, {512, 512, 512, 512, 512}), 64, 8);
  PrintBound("Star T3 N=(1,256,256,256)",
             query::JoinQuery::Star(3, {1, 256, 256, 256}), 64, 8);
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "gens_families")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
