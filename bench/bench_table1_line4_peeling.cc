// Experiment T1.3 (§4.1, §4.4): L4 peeling-strategy ablation.
// Claim: the two peel orders of Algorithm 2 on L4 cost Õ(N1*N3*N4/(M^2 B))
// vs Õ(N1*N2*N4/(M^2 B)); a smart algorithm compares N2 with N3 (here:
// where the instance's subjoin mass actually is) and takes the min.
#include "bench/bench_util.h"
#include <cmath>

#include "gens/planner.h"
#include "query/edge_cover.h"
#include "core/acyclic_join.h"
#include "tests/test_util.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

// Skewed L4: R2 concentrated on one v2 value makes R1 ⋈ R2 quadratic, so
// branches that keep {e1,e2} in one subjoin with e4 pay for it.
std::vector<storage::Relation> SkewedL4(extmem::Device* dev, TupleCount n,
                                        bool skew_left) {
  std::vector<storage::Tuple> e1, e2, e3, e4;
  if (skew_left) {
    for (Value i = 0; i < n; ++i) e1.push_back({i, 0});
    for (Value j = 0; j < n; ++j) e2.push_back({0, j});
    for (Value j = 0; j < n; ++j) e3.push_back({j, j});
    for (Value j = 0; j < n; ++j) e4.push_back({j, j});
  } else {
    for (Value j = 0; j < n; ++j) e1.push_back({j, j});
    for (Value j = 0; j < n; ++j) e2.push_back({j, j});
    for (Value j = 0; j < n; ++j) e3.push_back({j, 0});
    for (Value i = 0; i < n; ++i) e4.push_back({0, i});
  }
  return {test::MakeRel(dev, {0, 1}, e1), test::MakeRel(dev, {1, 2}, e2),
          test::MakeRel(dev, {2, 3}, e3), test::MakeRel(dev, {3, 4}, e4)};
}

gens::LeafChooser ForceEdge(bool lowest) {
  return [lowest](const query::JoinQuery&,
                  const std::vector<storage::Relation>&,
                  const std::vector<query::EdgeId>& candidates) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      const bool better = lowest ? candidates[i] < candidates[best]
                                 : candidates[i] > candidates[best];
      if (better) best = i;
    }
    return best;
  };
}

bench::Measured RunWith(extmem::Device* dev,
                        const std::vector<storage::Relation>& rels,
                        gens::LeafChooser chooser) {
  return bench::MeasureJoin(dev, [&](auto emit) {
    core::AcyclicJoinOptions opts;
    opts.leaf_chooser = std::move(chooser);
    core::AcyclicJoin(rels, emit, opts);
  });
}

// Per-branch bound with the paper's accounting: per-component AGM
// numerators (ignoring cross-relation reduction constraints).
long double PsiAgm(const query::JoinQuery& q, const gens::EdgeSet& subset,
                   TupleCount m, TupleCount b) {
  if (subset.empty()) return 0.0L;
  long double numerator = 1.0L;
  for (const auto& component : q.ConnectedComponents(subset)) {
    query::JoinQuery sub;
    for (query::EdgeId e : component) sub.AddRelation(q.edge(e), q.size(e));
    numerator *= query::AgmBound(sub);
  }
  long double denom = static_cast<long double>(b);
  for (std::size_t i = 1; i < subset.size(); ++i) denom *= m;
  return numerator / denom;
}

long double AgmBranchBound(const query::JoinQuery& q, query::EdgeId leaf,
                           TupleCount m, TupleCount b) {
  long double best = -1.0L;
  for (const auto& family : gens::GenSFamiliesFirstPeel(q, leaf)) {
    long double mx = 0.0L;
    for (const auto& s : family) mx = std::max(mx, PsiAgm(q, s, m, b));
    if (best < 0.0L || mx < best) best = mx;
  }
  return best;
}

void PrintBranchBounds() {
  bench::Banner(
      "T1.3a L4 per-branch worst-case bounds (§4.4)",
      "paper: peel-{e1,e2}-first is bounded by subjoin {e1,e3,e4} -> "
      "N1N3N4/(M^2 B); peel-{e3,e4}-first by {e1,e2,e4} -> N1N2N4/(M^2 B);"
      " a smart algorithm compares N2 with N3 and takes the min");
  bench::Table table({"N1..N4", "M", "B", "agm_bound_e1", "agm_bound_e4",
                      "agm_min_is", "lp_bound_e1", "lp_bound_e4"});
  const TupleCount m = 64, b = 8;
  for (const auto& sizes : std::vector<std::vector<TupleCount>>{
           {1024, 4096, 1024, 1024},
           {1024, 1024, 4096, 1024},
           {1024, 16384, 1024, 1024},
           {1024, 1024, 1024, 1024}}) {
    const query::JoinQuery q = query::JoinQuery::Line(4, sizes);
    const double agm_e1 = static_cast<double>(AgmBranchBound(q, 0, m, b));
    const double agm_e4 = static_cast<double>(AgmBranchBound(q, 3, m, b));
    const double lp_e1 =
        static_cast<double>(gens::BoundIfPeeledFirst(q, 0, m, b));
    const double lp_e4 =
        static_cast<double>(gens::BoundIfPeeledFirst(q, 3, m, b));
    table.AddRow({bench::U(sizes[0]) + "," + bench::U(sizes[1]) + "," +
                      bench::U(sizes[2]) + "," + bench::U(sizes[3]),
                  bench::U(m), bench::U(b), bench::F(agm_e1),
                  bench::F(agm_e4),
                  agm_e1 < agm_e4   ? "peel e1 side"
                  : agm_e4 < agm_e1 ? "peel e4 side"
                                    : "tie",
                  bench::F(lp_e1), bench::F(lp_e4)});
  }
  table.Print();
  std::printf(
      "\nNote: under the paper's AGM accounting the cheaper side follows\n"
      "the N2-vs-N3 rule; under the tighter cross-product-achievable LP\n"
      "numerators (which respect full reduction) the branches tie —\n"
      "the AGM-worst instances are not realizable fully reduced.\n");
}

void Run() {
  PrintBranchBounds();
  bench::Banner(
      "T1.3b L4 peeling ablation (measured, skewed instances)",
      "on a fixed instance both branches are within their Theorem 3 "
      "bounds; the constants (and the O~ log factor from per-chunk "
      "re-sorting) differ by the skew side, and the worst/best gap is "
      "the price of a fixed peel order");
  bench::Table table({"skew", "N", "M", "B", "results", "peel_e1_io",
                      "peel_e4_io", "exact_guided_io", "worst/best"});
  for (const bool skew_left : {true, false}) {
    for (TupleCount n : {512, 1024, 2048}) {
      const TupleCount m = 64, b = 8;
      extmem::Device dev(m, b);
      const auto rels = SkewedL4(&dev, n, skew_left);
      const bench::Measured e1_first = RunWith(&dev, rels, ForceEdge(true));
      const bench::Measured e4_first = RunWith(&dev, rels, ForceEdge(false));
      const bench::Measured guided =
          RunWith(&dev, rels, gens::ExactCostGuidedChooser(m, b));
      const std::uint64_t best = std::min(e1_first.ios, e4_first.ios);
      const std::uint64_t worst = std::max(e1_first.ios, e4_first.ios);
      table.AddRow({skew_left ? "left(v2)" : "right(v4)", bench::U(n),
                    bench::U(m), bench::U(b), bench::U(guided.results),
                    bench::U(e1_first.ios), bench::U(e4_first.ios),
                    bench::U(guided.ios),
                    bench::F(static_cast<double>(worst) / best)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check: in T1.3a the cheaper bound side flips with N2 vs N3\n"
      "(the paper's rule); in T1.3b every branch stays within a constant\n"
      "(up to the O~ log) of the instance's Theorem 3 bound.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "table1_line4_peeling")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
