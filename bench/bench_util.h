#ifndef EMJOIN_BENCH_BENCH_UTIL_H_
#define EMJOIN_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/emit.h"
#include "extmem/device.h"
#include "gens/psi.h"

namespace emjoin::bench {

/// Fixed-width table printer for experiment output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      width[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i].size() > width[i]) width[i] = row[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(width[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(width[i], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string U(std::uint64_t v) { return std::to_string(v); }

inline std::string F(double v) {
  char buf[64];
  if (v >= 100 || v == 0.0) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

/// Runs `fn` and returns the I/Os it charged plus the results it emitted.
struct Measured {
  std::uint64_t ios = 0;
  std::uint64_t results = 0;
};

inline Measured MeasureJoin(
    extmem::Device* dev,
    const std::function<void(const core::EmitFn&)>& run) {
  core::CountingSink sink;
  const extmem::IoStats before = dev->stats();
  run(sink.AsEmitFn());
  Measured m;
  m.ios = (dev->stats() - before).total();
  m.results = sink.count();
  return m;
}

/// Instance-exact Theorem 3 bound (max Ψ + linear term) for reporting.
inline double TheoremBound(const std::vector<storage::Relation>& rels,
                           const extmem::Device& dev) {
  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
  return static_cast<double>(
      gens::PredictBoundExact(q, rels, dev.M(), dev.B()).bound);
}

inline void Banner(const std::string& title, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), claim.c_str());
}

}  // namespace emjoin::bench

#endif  // EMJOIN_BENCH_BENCH_UTIL_H_
