#ifndef EMJOIN_BENCH_BENCH_UTIL_H_
#define EMJOIN_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/emit.h"
#include "extmem/device.h"
#include "gens/psi.h"

namespace emjoin::bench {

/// Fixed-width table printer for experiment output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      width[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i].size() > width[i]) width[i] = row[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(width[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(width[i], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string U(std::uint64_t v) { return std::to_string(v); }

inline std::string F(double v) {
  char buf[64];
  if (v >= 100 || v == 0.0) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

/// Runs `fn` and returns the I/Os it charged plus the results it emitted.
struct Measured {
  std::uint64_t ios = 0;
  std::uint64_t results = 0;
};

inline Measured MeasureJoin(
    extmem::Device* dev,
    const std::function<void(const core::EmitFn&)>& run) {
  core::CountingSink sink;
  const extmem::IoStats before = dev->stats();
  run(sink.AsEmitFn());
  Measured m;
  m.ios = (dev->stats() - before).total();
  m.results = sink.count();
  return m;
}

/// Instance-exact Theorem 3 bound (max Ψ + linear term) for reporting.
inline double TheoremBound(const std::vector<storage::Relation>& rels,
                           const extmem::Device& dev) {
  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
  return static_cast<double>(
      gens::PredictBoundExact(q, rels, dev.M(), dev.B()).bound);
}

inline void Banner(const std::string& title, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), claim.c_str());
}

/// Monotonic wall clock in nanoseconds.
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Collects per-benchmark wall-clock and I/O measurements and renders
/// them as a table and/or a machine-readable JSON file, so the perf
/// trajectory of the substrate is tracked across PRs.
///
/// JSON schema: {"benches": [{"bench": str,
///                            "config": {"M": int, "B": int, "n": int},
///                            "ios": int, "wall_ns": int,
///                            "results": int}, ...]}
class Reporter {
 public:
  struct Record {
    std::string bench;
    std::uint64_t m = 0;        // device memory size M, in tuples
    std::uint64_t b = 0;        // device block size B, in tuples
    std::uint64_t n = 0;        // workload size, in tuples
    std::uint64_t ios = 0;      // charged block I/Os for one run
    std::uint64_t wall_ns = 0;  // best-of-repetitions wall clock
    std::uint64_t results = 0;  // tuples produced / consumed
  };

  void Add(Record r) { records_.push_back(std::move(r)); }

  /// Times `fn` `reps` times and records the best wall clock. `fn`
  /// returns the number of result tuples; I/Os are diffed off `dev`
  /// for the first repetition (reruns charge identically).
  void Measure(const std::string& bench, extmem::Device* dev, std::uint64_t n,
               int reps, const std::function<std::uint64_t()>& fn) {
    Record rec;
    rec.bench = bench;
    rec.m = dev->M();
    rec.b = dev->B();
    rec.n = n;
    rec.wall_ns = ~std::uint64_t{0};
    for (int i = 0; i < reps; ++i) {
      const extmem::IoStats before = dev->stats();
      const std::uint64_t t0 = NowNs();
      const std::uint64_t results = fn();
      const std::uint64_t elapsed = NowNs() - t0;
      if (elapsed < rec.wall_ns) rec.wall_ns = elapsed;
      if (i == 0) {
        rec.ios = (dev->stats() - before).total();
        rec.results = results;
      }
    }
    Add(std::move(rec));
  }

  void PrintTable() const {
    Table table({"bench", "M", "B", "n", "ios", "wall_ms", "Mtuples/s",
                 "results"});
    for (const Record& r : records_) {
      const double ms = static_cast<double>(r.wall_ns) / 1e6;
      const double mtps = r.wall_ns == 0
                              ? 0.0
                              : static_cast<double>(r.n) * 1e3 /
                                    static_cast<double>(r.wall_ns);
      table.AddRow({r.bench, U(r.m), U(r.b), U(r.n), U(r.ios), F(ms), F(mtps),
                    U(r.results)});
    }
    table.Print();
  }

  /// Writes the records as JSON. Returns false if the file can't be
  /// opened.
  bool WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"benches\": [\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "    {\"bench\": \"%s\", "
                   "\"config\": {\"M\": %llu, \"B\": %llu, \"n\": %llu}, "
                   "\"ios\": %llu, \"wall_ns\": %llu, \"results\": %llu}%s\n",
                   r.bench.c_str(), static_cast<unsigned long long>(r.m),
                   static_cast<unsigned long long>(r.b),
                   static_cast<unsigned long long>(r.n),
                   static_cast<unsigned long long>(r.ios),
                   static_cast<unsigned long long>(r.wall_ns),
                   static_cast<unsigned long long>(r.results),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
};

}  // namespace emjoin::bench

#endif  // EMJOIN_BENCH_BENCH_UTIL_H_
