#ifndef EMJOIN_BENCH_BENCH_UTIL_H_
#define EMJOIN_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/emit.h"
#include "extmem/device.h"
#include "extmem/fault_injector.h"
#include "gens/psi.h"
#include "metrics/collect.h"
#include "metrics/obs.h"
#include "obs/runtime.h"
#include "parallel/parallel_join.h"
#include "trace/sinks.h"
#include "trace/tracer.h"

namespace emjoin::bench {

/// Process-wide tracing configuration, filled in by ParseTraceFlags.
/// `enabled` is false unless the user passed a --trace flag, so benches
/// run with tracing fully detached (Device::tracer() == nullptr) by
/// default and keep their untraced wall clock.
struct TraceConfig {
  bool enabled = false;
  std::string path;              // empty: tree report to stdout
  std::string format = "tree";   // tree | jsonl | chrome
};

inline TraceConfig& GlobalTraceConfig() {
  static TraceConfig config;
  return config;
}

inline trace::Tracer& GlobalTracer() {
  static trace::Tracer tracer;
  return tracer;
}

/// Strips `--trace[=PATH]` and `--trace-format={tree,jsonl,chrome}` from
/// argv (compacting it in place and shrinking *argc) so bench-specific
/// flag parsing never sees them. Returns false — after printing a
/// diagnostic to stderr — on an unknown trace format or a file-backed
/// format without a path; callers should exit nonzero.
inline bool ParseTraceFlags(int* argc, char** argv) {
  TraceConfig& config = GlobalTraceConfig();
  bool ok = true;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--trace") {
      config.enabled = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      config.enabled = true;
      config.path = std::string(arg.substr(8));
    } else if (arg.rfind("--trace-format=", 0) == 0) {
      config.enabled = true;
      config.format = std::string(arg.substr(15));
      if (config.format != "tree" && config.format != "jsonl" &&
          config.format != "chrome") {
        std::fprintf(stderr,
                     "unknown trace format '%s' (expected tree, jsonl, or "
                     "chrome)\n",
                     config.format.c_str());
        ok = false;
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (ok && config.enabled && config.format != "tree" &&
      config.path.empty()) {
    std::fprintf(stderr, "--trace-format=%s requires --trace=PATH\n",
                 config.format.c_str());
    ok = false;
  }
  return ok;
}

/// Attaches the global tracer to `dev` iff tracing was requested.
inline void AttachTracer(extmem::Device* dev) {
  if (GlobalTraceConfig().enabled) dev->set_tracer(&GlobalTracer());
}

/// Attaches every requested observer (tracer, metrics registry, live
/// telemetry). All observer-only: zero charged I/Os either way.
inline void AttachObservers(extmem::Device* dev) {
  AttachTracer(dev);
  metrics::AttachMetrics(dev);
  obs::AttachTelemetry(dev);
}

/// Interns a dynamic span name (SpanRecord stores a borrowed pointer).
inline const char* InternSpanName(const std::string& name) {
  static std::set<std::string> names;
  return names.insert(name).first->c_str();
}

/// Flushes the collected trace to the configured sink. Call at the end
/// of main and return the result as the exit code: 0 on success or when
/// tracing is disabled, 1 when the output file cannot be written.
inline int FinishTrace() {
  const TraceConfig& config = GlobalTraceConfig();
  if (!config.enabled) return 0;
  const trace::Tracer& tracer = GlobalTracer();
  bool ok = true;
  if (config.format == "jsonl") {
    ok = trace::WriteJsonl(tracer, config.path);
  } else if (config.format == "chrome") {
    ok = trace::WriteChromeTrace(tracer, config.path);
  } else {
    const std::string report = trace::TreeReport(tracer);
    if (config.path.empty()) {
      std::fputs(report.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(config.path.c_str(), "w");
      ok = f != nullptr;
      if (ok) {
        std::fputs(report.c_str(), f);
        std::fclose(f);
      }
    }
  }
  if (!ok) {
    std::fprintf(stderr, "failed to write trace to %s\n",
                 config.path.c_str());
    return 1;
  }
  if (!config.path.empty()) {
    std::fprintf(stderr, "trace: %zu spans (%s) -> %s\n",
                 tracer.spans().size(), config.format.c_str(),
                 config.path.c_str());
  }
  return 0;
}

/// Fixed-width table printer for experiment output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      width[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i].size() > width[i]) width[i] = row[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(width[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(width[i], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string U(std::uint64_t v) { return std::to_string(v); }

inline std::string F(double v) {
  char buf[64];
  if (v >= 100 || v == 0.0) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

/// Runs `fn` and returns the I/Os it charged plus the results it emitted.
struct Measured {
  std::uint64_t ios = 0;
  std::uint64_t results = 0;
};

/// Instance-exact Theorem 3 bound (max Ψ + linear term) for reporting.
inline double TheoremBound(const std::vector<storage::Relation>& rels,
                           const extmem::Device& dev) {
  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
  return static_cast<double>(
      gens::PredictBoundExact(q, rels, dev.M(), dev.B()).bound);
}

inline void Banner(const std::string& title, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), claim.c_str());
}

/// Monotonic wall clock in nanoseconds.
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Collects per-benchmark wall-clock and I/O measurements and renders
/// them as a table and/or a machine-readable JSON file, so the perf
/// trajectory of the substrate is tracked across PRs.
///
/// JSON schema: {"benches": [{"bench": str,
///                            "config": {"M": int, "B": int, "n": int},
///                            "ios": int, "wall_ns": int, "results": int,
///                            "peak_mem": int,
///                            "expect": float,   // only when a bound is known
///                            "tags": {tag: {"reads": int,
///                                           "writes": int}, ...}}, ...]}
class Reporter {
 public:
  struct Record {
    std::string bench;
    std::uint64_t m = 0;        // device memory size M, in tuples
    std::uint64_t b = 0;        // device block size B, in tuples
    std::uint64_t n = 0;        // workload size, in tuples
    std::uint64_t ios = 0;      // charged block I/Os for one run
    std::uint64_t wall_ns = 0;  // best-of-repetitions wall clock
    std::uint64_t results = 0;  // tuples produced / consumed
    std::uint64_t peak_mem = 0; // gauge high-water during the first rep
    // The paper's formula value for this instance; < 0 when the bench
    // has no closed-form claim for the record.
    long double expect = -1.0L;
    // Per-tag I/O deltas for the first repetition (nonzero tags only).
    std::map<std::string, extmem::IoStats, std::less<>> tags;
  };

  void Add(Record r) { records_.push_back(std::move(r)); }

  /// Times `fn` `reps` times and records the best wall clock. `fn`
  /// returns the number of result tuples; I/Os are diffed off `dev`
  /// for the first repetition (reruns charge identically).
  void Measure(const std::string& bench, extmem::Device* dev, std::uint64_t n,
               int reps, const std::function<std::uint64_t()>& fn) {
    AttachObservers(dev);
    Record rec;
    rec.bench = bench;
    rec.m = dev->M();
    rec.b = dev->B();
    rec.n = n;
    rec.wall_ns = ~std::uint64_t{0};
    for (int i = 0; i < reps; ++i) {
      const extmem::IoStats before = dev->stats();
      const auto tags_before = dev->per_tag();
      const std::uint64_t t0 = NowNs();
      std::uint64_t results = 0;
      {
        trace::Span span(dev, InternSpanName(bench));
        results = fn();
      }
      const std::uint64_t elapsed = NowNs() - t0;
      if (elapsed < rec.wall_ns) rec.wall_ns = elapsed;
      if (i == 0) {
        rec.ios = (dev->stats() - before).total();
        rec.results = results;
        rec.peak_mem = dev->gauge().high_water();
        for (const auto& [tag, after] : dev->per_tag()) {
          extmem::IoStats delta = after;
          if (const auto it = tags_before.find(tag);
              it != tags_before.end()) {
            delta = after - it->second;
          }
          if (delta.total() > 0) rec.tags[tag] = delta;
        }
        if (metrics::Registry* reg = dev->metrics()) {
          metrics::CollectDeviceDelta(*dev, before, tags_before, reg);
        }
      }
    }
    Add(std::move(rec));
  }

  void PrintTable() const {
    Table table({"bench", "M", "B", "n", "ios", "wall_ms", "Mtuples/s",
                 "results", "peak_mem"});
    for (const Record& r : records_) {
      const double ms = static_cast<double>(r.wall_ns) / 1e6;
      const double mtps = r.wall_ns == 0
                              ? 0.0
                              : static_cast<double>(r.n) * 1e3 /
                                    static_cast<double>(r.wall_ns);
      table.AddRow({r.bench, U(r.m), U(r.b), U(r.n), U(r.ios), F(ms), F(mtps),
                    U(r.results), U(r.peak_mem)});
    }
    table.Print();
  }

  /// Writes the records as JSON. Returns false if the file can't be
  /// opened.
  bool WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"benches\": [\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "    {\"bench\": \"%s\", "
                   "\"config\": {\"M\": %llu, \"B\": %llu, \"n\": %llu}, "
                   "\"ios\": %llu, \"wall_ns\": %llu, \"results\": %llu, "
                   "\"peak_mem\": %llu, ",
                   r.bench.c_str(), static_cast<unsigned long long>(r.m),
                   static_cast<unsigned long long>(r.b),
                   static_cast<unsigned long long>(r.n),
                   static_cast<unsigned long long>(r.ios),
                   static_cast<unsigned long long>(r.wall_ns),
                   static_cast<unsigned long long>(r.results),
                   static_cast<unsigned long long>(r.peak_mem));
      if (r.expect >= 0.0L) {
        std::fprintf(f, "\"expect\": %.3Lf, ", r.expect);
      }
      std::fprintf(f, "\"tags\": {");
      bool first_tag = true;
      for (const auto& [tag, io] : r.tags) {
        std::fprintf(f, "%s\"%s\": {\"reads\": %llu, \"writes\": %llu}",
                     first_tag ? "" : ", ", tag.c_str(),
                     static_cast<unsigned long long>(io.block_reads),
                     static_cast<unsigned long long>(io.block_writes));
        first_tag = false;
      }
      std::fprintf(f, "}}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
};

/// Every bench's records funnel into one reporter so FinishBench can
/// write the whole run as BENCH_<name>.json for the regression gate.
inline Reporter& GlobalReporter() {
  static Reporter reporter;
  return reporter;
}

/// Sharded-execution knobs, filled in by ParseBenchFlags from
/// --shards=K / --workers=W. Every bench strips (and thus accepts) the
/// flags; only benches that route joins through RunJoinAutoSharded —
/// bench_parallel today — act on them, the rest measure the serial
/// operators regardless.
struct ShardConfig {
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
};

inline ShardConfig& GlobalShardConfig() {
  static ShardConfig config;
  return config;
}

/// Runs the auto-dispatched join under GlobalShardConfig (serial when
/// shards == 1), merging shard metrics into the global registry when
/// --metrics is active. Benches are fault-free, so a non-ok status is a
/// harness bug: it aborts loudly rather than skewing the numbers.
inline parallel::ParallelJoinReport RunJoinAutoSharded(
    const std::vector<storage::Relation>& rels, const core::EmitFn& emit) {
  parallel::ParallelOptions options;
  options.shards = GlobalShardConfig().shards;
  options.workers = GlobalShardConfig().workers;
  metrics::Registry* merged = metrics::MetricsCollectionEnabled()
                                  ? &metrics::GlobalMetricsRegistry()
                                  : nullptr;
  auto result = parallel::TryParallelJoinAuto(rels, emit, options, merged);
  if (!result.ok()) {
    std::fprintf(stderr, "sharded join failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return *std::move(result);
}

/// Per-bench run configuration, filled in by ParseBenchFlags.
struct BenchConfig {
  std::string name;       // e.g. "table1_line3"
  bool write_json = true; // --no-json disables
  std::string json_path;  // default BENCH_<name>.json
  int reps = 1;           // --reps=K for wall-clock best-of-K
};

inline BenchConfig& GlobalBenchConfig() {
  static BenchConfig config;
  return config;
}

/// One-stop flag parsing for bench mains: strips trace flags
/// (--trace[=PATH], --trace-format=...), observability flags
/// (--metrics=PATH, --metrics-format=..., --audit=PATH), the sharding
/// flags --shards=K / --workers=W (into GlobalShardConfig) and the bench
/// output flags --json[=PATH], --no-json, --reps=K from argv, leaving
/// any bench-specific flags in place. Returns false (diagnostic
/// printed) on a malformed value; callers should exit nonzero.
inline bool ParseBenchFlags(int* argc, char** argv, const std::string& name,
                            int default_reps = 1) {
  BenchConfig& config = GlobalBenchConfig();
  config.name = name;
  config.json_path = "BENCH_" + name + ".json";
  config.reps = default_reps;
  if (!ParseTraceFlags(argc, argv)) return false;
  bool ok = true;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    const int obs = metrics::ParseObsFlag(arg);
    if (obs != 0) {
      if (obs < 0) ok = false;
      continue;
    }
    if (arg == "--json") {
      config.write_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      config.write_json = true;
      config.json_path = std::string(arg.substr(7));
    } else if (arg == "--no-json") {
      config.write_json = false;
    } else if (arg.rfind("--reps=", 0) == 0) {
      config.reps = std::atoi(arg.substr(7).data());
      if (config.reps < 1) config.reps = 1;
    } else if (arg.rfind("--shards=", 0) == 0) {
      GlobalShardConfig().shards = static_cast<std::uint32_t>(
          std::strtoul(arg.substr(9).data(), nullptr, 10));
      if (GlobalShardConfig().shards == 0) GlobalShardConfig().shards = 1;
    } else if (arg.rfind("--workers=", 0) == 0) {
      GlobalShardConfig().workers = static_cast<std::uint32_t>(
          std::strtoul(arg.substr(10).data(), nullptr, 10));
      if (GlobalShardConfig().workers == 0) GlobalShardConfig().workers = 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (ok) {
    if (const extmem::Status status = obs::StartConfiguredExporter();
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      ok = false;
    }
  }
  return ok;
}

/// When tracing is enabled the run is wrapped in a root span named
/// `span_name`; pass `expect_ios` (the paper's formula value for this
/// instance) to annotate the span for measured/expected reporting.
/// Every call also appends a record to GlobalReporter so FinishBench
/// can write the bench's JSON file; pass `n` (the workload scale) so
/// the record keys stay unique for bench_diff.
inline Measured MeasureJoin(
    extmem::Device* dev,
    const std::function<void(const core::EmitFn&)>& run,
    const char* span_name = "join", long double expect_ios = -1.0L,
    std::uint64_t n = 0) {
  AttachObservers(dev);
  core::CountingSink sink;
  const extmem::IoStats before = dev->stats();
  const metrics::TagSnapshot tags_before = dev->per_tag();
  const extmem::FaultStats faults_before =
      dev->fault_injector() != nullptr ? dev->fault_injector()->stats()
                                       : extmem::FaultStats{};
  const std::uint64_t t0 = NowNs();
  {
    trace::Span span(dev, span_name);
    if (expect_ios >= 0.0L) span.ExpectIos(expect_ios);
    run(sink.AsEmitFn());
  }
  const std::uint64_t elapsed = NowNs() - t0;

  Reporter::Record rec;
  rec.bench = span_name;
  rec.m = dev->M();
  rec.b = dev->B();
  rec.n = n;
  rec.ios = (dev->stats() - before).total();
  rec.wall_ns = elapsed;
  rec.results = sink.count();
  rec.peak_mem = dev->gauge().high_water();
  rec.expect = expect_ios;
  for (const auto& [tag, after] : dev->per_tag()) {
    extmem::IoStats delta = after;
    if (const auto it = tags_before.find(tag); it != tags_before.end()) {
      delta = after - it->second;
    }
    if (delta.total() > 0) rec.tags[tag] = delta;
  }
  if (metrics::Registry* reg = dev->metrics()) {
    metrics::CollectDeviceDelta(*dev, before, tags_before, reg);
    if (dev->fault_injector() != nullptr) {
      metrics::CollectFaultDelta(
          dev->fault_injector()->stats() - faults_before, reg);
    }
    // Refresh the live /metrics body after each measured region so an
    // HTTP scrape mid-bench sees up-to-date samples.
    obs::PublishGlobalMetrics();
  }

  Measured m;
  m.ios = rec.ios;
  m.results = rec.results;
  GlobalReporter().Add(std::move(rec));
  return m;
}

/// Writes the measured-vs-bound audit for every record that carries an
/// expected value, in the same {"rows": [...]} shape emjoin_audit uses
/// so bench_diff can gate it. A row passes when measured/expected stays
/// within [1/64, 64] — the bench-level band is generous because single
/// points carry no slope information.
inline bool WriteBenchAudit(const std::string& path) {
  const auto& records = GlobalReporter().records();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  // One-sided, like emjoin_audit: a Table 1 claim is an upper bound,
  // so only exceeding it (beyond the constant-factor band plus a
  // partial-block rounding slack) is a failure.
  constexpr double kBand = 64.0;
  constexpr double kSlackIos = 64.0;
  bool all_pass = true;
  std::string rows;
  std::size_t audited = 0;
  for (const Reporter::Record& r : records) {
    if (r.expect < 0.0L) continue;
    const double expected = static_cast<double>(r.expect);
    const double ratio =
        expected > 0 ? static_cast<double>(r.ios) / expected : 0.0;
    const bool pass =
        static_cast<double>(r.ios) <= kBand * expected + kSlackIos;
    all_pass = all_pass && pass;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "%s    {\"name\": \"%s|M=%llu|B=%llu|n=%llu\", "
                  "\"measured\": %llu, \"expected\": %.3f, "
                  "\"ratio\": %.4f, \"verdict\": \"%s\"}",
                  audited == 0 ? "" : ",\n", r.bench.c_str(),
                  static_cast<unsigned long long>(r.m),
                  static_cast<unsigned long long>(r.b),
                  static_cast<unsigned long long>(r.n),
                  static_cast<unsigned long long>(r.ios), expected, ratio,
                  pass ? "PASS" : "FAIL");
    rows += buf;
    ++audited;
  }
  std::fprintf(f,
               "{\n  \"schema\": \"emjoin-bench-audit-v1\",\n"
               "  \"all_pass\": %s,\n  \"rows\": [\n%s\n  ]\n}\n",
               all_pass ? "true" : "false", rows.c_str());
  std::fclose(f);
  return true;
}

/// Flushes everything a bench accumulated: the BENCH_<name>.json
/// reporter records, the metrics registry (--metrics), the
/// measured-vs-bound audit (--audit) and the trace. Call at the end of
/// main and return the result as the exit code.
inline int FinishBench() {
  const BenchConfig& config = GlobalBenchConfig();
  int rc = 0;
  if (config.write_json && !GlobalReporter().records().empty()) {
    if (GlobalReporter().WriteJson(config.json_path)) {
      std::fprintf(stderr, "bench: %zu records -> %s\n",
                   GlobalReporter().records().size(),
                   config.json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", config.json_path.c_str());
      rc = 1;
    }
  }
  if (!metrics::WriteMetricsFile()) rc = 1;
  const std::string& audit_path = metrics::GlobalObsConfig().audit_path;
  if (!audit_path.empty()) {
    if (WriteBenchAudit(audit_path)) {
      std::fprintf(stderr, "audit -> %s\n", audit_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", audit_path.c_str());
      rc = 1;
    }
  }
  const int trace_rc = FinishTrace();
  if (rc == 0) rc = trace_rc;
  // Telemetry epilogue last: pins /progress at 100 on success, dumps
  // the flight recorder, lingers for a final scrape, stops the exporter.
  return obs::FinishTelemetry(rc);
}

}  // namespace emjoin::bench

#endif  // EMJOIN_BENCH_BENCH_UTIL_H_
