// Experiment E15 (§4.1): the round-robin simulation, literally.
// Claim: Algorithm 2 is nondeterministic; the paper's round-robin
// simulation attains the cost of the best branch. We enumerate every
// uniform peel strategy, measure each, and show the default cost-guided
// chooser lands within a small constant of the empirical best branch.
#include "bench/bench_util.h"
#include "core/acyclic_join.h"
#include "core/exhaustive.h"
#include "core/reduce.h"
#include "workload/random_instance.h"

namespace emjoin {
namespace {

void Run() {
  bench::Banner(
      "E15 exhaustive branch enumeration vs the cost-guided chooser",
      "the min over branches is what round-robin attains (up to the "
      "interleaving constant); the guided single run must track it");
  bench::Table table({"query", "seed", "branches", "best_io", "worst_io",
                      "worst/best", "guided_io", "guided/best"});
  for (const auto& [name, q] :
       std::vector<std::pair<std::string, query::JoinQuery>>{
           {"L4", query::JoinQuery::Line(4)},
           {"L5", query::JoinQuery::Line(5)},
           {"star3", query::JoinQuery::Star(3)},
           {"lollipop2", query::JoinQuery::Lollipop(2)}}) {
    for (std::uint64_t seed : {1, 2}) {
      extmem::Device dev(16, 4);
      workload::RandomOptions opts;
      opts.seed = 400 + seed;
      opts.domain_size = 12;
      opts.zipf_s = seed == 1 ? 0.0 : 1.3;
      const auto rels = workload::RandomInstance(
          &dev, q, std::vector<TupleCount>(q.num_edges(), 48), opts);
      const auto reduced = core::FullyReduce(rels);

      const auto branches = core::ExhaustivePeelSearch(reduced, 48);
      std::uint64_t best = branches.front().ios;
      std::uint64_t worst = branches.front().ios;
      for (const auto& br : branches) {
        best = std::min(best, br.ios);
        worst = std::max(worst, br.ios);
      }

      core::CountingSink sink;
      const extmem::IoStats before = dev.stats();
      core::AcyclicJoinOptions a_opts;
      a_opts.reduce_first = false;
      core::AcyclicJoin(reduced, sink.AsEmitFn(), a_opts);
      const std::uint64_t guided = (dev.stats() - before).total();

      table.AddRow({name, bench::U(seed), bench::U(branches.size()),
                    bench::U(best), bench::U(worst),
                    bench::F(static_cast<double>(worst) / best),
                    bench::U(guided),
                    bench::F(static_cast<double>(guided) / best)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check: guided/best stays near 1 while worst/best can be\n"
      "several-fold — the chooser recovers the round-robin guarantee\n"
      "without running every branch.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "exhaustive_roundrobin")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
