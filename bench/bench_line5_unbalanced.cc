// Experiment T1.5 (§6.3, Algorithm 4): unbalanced L5.
// Claim: Algorithm 2's cost bound contains the pair term N2*N4/(MB)
// (every GenS family includes {e2,e4}, §4.4); when N1*N3*N5 < N2*N4 that
// term dominates the true optimum Õ(N1N3N5/(M^2B) + N1N3/B + N3N5/B),
// which Algorithm 4 achieves. The gap is realized by an instance with
// matching ends (K >> M) and cross-product middle relations: Algorithm 2
// pays ~K^2*z1*z2/(MB) while Algorithm 4 materializes S and T of size
// K*z1 each and nested-loops per R3 tuple.
#include "bench/bench_util.h"
#include "core/acyclic_join.h"
#include "core/dispatch.h"
#include "core/unbalanced5.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

// R1 = matching(K) on (v1,v2); R2 = dom(v2) x dom(v3) = K x z1;
// R3 maps dom(v3) onto dom(v4) (z1 -> z2); R4 = z2 x K; R5 = matching(K).
// Sizes: N1 = N5 = K, N2 = K*z1, N3 = z1, N4 = z2*K.
// Unbalanced iff N2*N4 = K^2*z1*z2 > N1*N3*N5 = K^2*z1, i.e. z2 > 1.
std::vector<storage::Relation> HardL5(extmem::Device* dev, TupleCount k,
                                      TupleCount z1, TupleCount z2) {
  std::vector<storage::Relation> rels;
  rels.push_back(workload::Matching(dev, 0, 1, k));
  rels.push_back(workload::CrossProduct(dev, 1, 2, k, z1));
  rels.push_back(workload::ManyToOne(dev, 2, 3, z1, z2));
  rels.push_back(workload::CrossProduct(dev, 3, 4, z2, k));
  rels.push_back(workload::Matching(dev, 4, 5, k));
  return rels;
}

void Run() {
  bench::Banner(
      "T1.5 unbalanced L5: Algorithm 4 vs Algorithm 2",
      "paper §6.3: when N1N3N5 < N2N4, Algorithm 2 pays its unavoidable "
      "{e2,e4} term ~N2N4/(MB) while Algorithm 4 stays at "
      "N1N3N5/(M^2B) + N1N3/B + N3N5/B; the gap grows with z2");
  bench::Table table({"z2", "N2*N4/(MB)", "alg4_bound", "results",
                      "alg4_io", "alg2_io", "alg2/alg4", "auto_algorithm"});
  const TupleCount m = 64, b = 8, k = 256, z1 = 32;
  for (TupleCount z2 : {1, 2, 4, 8, 16, 32, 64}) {
    extmem::Device dev4(m, b), dev2(m, b), deva(m, b);
    const auto rels4 = HardL5(&dev4, k, z1, z2);
    const auto rels2 = HardL5(&dev2, k, z1, z2);
    const auto relsa = HardL5(&deva, k, z1, z2);

    const double pair_term = static_cast<double>(k) * z1 * z2 * k / (m * b);
    const double alg4_bound =
        static_cast<double>(k) * z1 * k /
            (static_cast<double>(m) * m * b) +
        2.0 * static_cast<double>(k) * z1 / b +
        static_cast<double>(2 * k + k * z1 + z1 + z2 * k) / b;
    const bench::Measured alg4 = bench::MeasureJoin(
        &dev4,
        [&](auto emit) {
          core::LineJoinUnbalanced5(rels4[0], rels4[1], rels4[2], rels4[3],
                                    rels4[4], emit);
        },
        bench::InternSpanName("alg4_L5 z2=" + std::to_string(z2)),
        alg4_bound, z2);
    const bench::Measured alg2 = bench::MeasureJoin(
        &dev2, [&](auto emit) { core::AcyclicJoin(rels2, emit); },
        bench::InternSpanName("alg2_L5u z2=" + std::to_string(z2)), -1.0L,
        z2);
    core::CountingSink sink;
    const core::AutoJoinReport report = core::JoinAuto(relsa, sink.AsEmitFn());
    table.AddRow({bench::U(z2), bench::F(pair_term), bench::F(alg4_bound),
                  bench::U(alg4.results), bench::U(alg4.ios),
                  bench::U(alg2.ios),
                  bench::F(static_cast<double>(alg2.ios) / alg4.ios),
                  report.algorithm});
  }
  table.Print();
  std::printf(
      "\nShape check: at z2 = 1 (balance boundary) the two are close; as\n"
      "z2 grows, Algorithm 2's cost follows the N2N4/(MB) pair term while\n"
      "Algorithm 4 stays near its flat bound, and the dispatcher routes\n"
      "unbalanced instances to Algorithm 4.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "line5_unbalanced")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
