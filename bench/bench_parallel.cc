// Sharded parallel join execution on a sort-heavy random L3 instance.
//
// Claim: hash-partitioning the inputs across K shards cuts the I/O
// critical path (the slowest shard's charged blocks, partition included)
// by >= 2x at K = 4 versus the serial join, while per-shard I/O counts
// stay bit-identical across worker counts W — parallelism changes the
// schedule, never the work.
//
// On speedup accounting: the device is *simulated*, so the quantity the
// paper's model actually predicts — and the one this bench gates — is
// the deterministic I/O critical path, recorded in the `ios` field of
// the speedup record below (serial I/Os * 100 / max-per-shard I/Os,
// gated exactly by bench_diff). Wall clock is recorded too and banded
// by the regression gate, but on a single-core CI runner threads add
// scheduling overhead instead of real concurrency, so wall time is
// evidence of safety (no lock contention pathologies), not of speedup.
//
// Records:
//   parallel_line3_serial        — TryJoinAuto on one device (baseline)
//   parallel_line3_k4_w{1,2,4}   — 4 shards at 1/2/4 workers; tags hold
//                                  exact per-shard reads/writes
//   parallel_line3_k4_speedup_x100 — ios = serial*100/critical-path;
//                                  the bench exits 1 if it dips below 200
#include <cstdio>

#include "bench/bench_util.h"
#include "core/dispatch.h"
#include "query/hypergraph.h"
#include "workload/random_instance.h"

namespace emjoin {
namespace {

constexpr TupleCount kM = 512;
constexpr TupleCount kB = 16;
constexpr TupleCount kDomain = 256;
constexpr std::uint32_t kShards = 4;

std::vector<storage::Relation> BuildInstance(extmem::Device* dev) {
  // Partition attribute is v2 (shared by e1 and e2, together 16000 of
  // the 16400 tuples); e3 is small so its broadcast stays cheap.
  workload::RandomOptions rnd;
  rnd.seed = 42;
  rnd.domain_size = kDomain;
  return workload::RandomInstance(dev, query::JoinQuery::Line(3),
                                  {8000, 8000, 400}, rnd);
}

int Run() {
  bench::Banner(
      "parallel: sharded L3, K=4 shards over a worker pool",
      "claim: I/O critical path (max-per-shard, partition included) is\n"
      ">= 2x shorter than the serial join at K=4, and per-shard I/O is\n"
      "identical at W=1/2/4 (deterministic sharding; see banner note on\n"
      "wall clock vs simulated I/O)");

  const std::uint64_t n = 8000 + 8000 + 400;

  // Serial baseline: the exact single-device path.
  std::uint64_t serial_ios = 0;
  {
    extmem::Device dev(kM, kB);
    const auto rels = BuildInstance(&dev);
    const bench::Measured serial = bench::MeasureJoin(
        &dev,
        [&](auto emit) {
          const auto report = core::TryJoinAuto(rels, emit);
          if (!report.ok()) std::abort();  // fault-free: cannot fail
        },
        "parallel_line3_serial", -1.0L, n);
    serial_ios = serial.ios;
  }

  // K=4 at W in {1, 2, 4}: same fragments, same per-shard devices, only
  // the schedule differs — so ios/results/tags must be bit-identical
  // across the three records (bench_diff holds them exactly).
  bench::Table table({"run", "workers", "wall_ms", "critical_path",
                      "total_io", "results"});
  std::uint64_t critical_path = 0;
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    extmem::Device dev(kM, kB);
    const auto rels = BuildInstance(&dev);
    bench::AttachObservers(&dev);

    parallel::ParallelOptions options;
    options.shards = kShards;
    options.workers = workers;
    core::CountingSink sink;
    const std::uint64_t t0 = bench::NowNs();
    const auto result =
        parallel::TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
    const std::uint64_t elapsed = bench::NowNs() - t0;
    if (!result.ok()) std::abort();  // fault-free: cannot fail
    const parallel::ParallelJoinReport& report = *result;

    bench::Reporter::Record rec;
    rec.bench = "parallel_line3_k4_w" + std::to_string(workers);
    rec.m = kM;
    rec.b = kB;
    rec.n = n;
    rec.ios = report.partition_io.total() + report.sum_shard_ios;
    rec.wall_ns = elapsed;
    rec.results = report.results;
    for (std::size_t s = 0; s < report.per_shard.size(); ++s) {
      rec.tags["shard_" + std::to_string(s)] = report.per_shard[s].io;
      if (report.per_shard[s].peak_resident > rec.peak_mem) {
        rec.peak_mem = report.per_shard[s].peak_resident;
      }
    }
    bench::GlobalReporter().Add(rec);

    critical_path = report.partition_io.total() + report.max_shard_ios;
    table.AddRow({rec.bench, bench::U(workers),
                  bench::F(static_cast<double>(elapsed) / 1e6),
                  bench::U(critical_path), bench::U(rec.ios),
                  bench::U(rec.results)});
  }
  table.Print();

  // The gated speedup claim, as a deterministic integer: serial I/Os
  // over the sharded critical path, x100.
  const std::uint64_t speedup_x100 = serial_ios * 100 / critical_path;
  bench::Reporter::Record speedup;
  speedup.bench = "parallel_line3_k4_speedup_x100";
  speedup.m = kM;
  speedup.b = kB;
  speedup.n = n;
  speedup.ios = speedup_x100;
  speedup.wall_ns = 1;  // no wall claim on this synthetic record
  bench::GlobalReporter().Add(speedup);

  std::printf("\nI/O critical path: serial %llu vs sharded %llu "
              "=> speedup %.2fx (claim: >= 2x)\n",
              static_cast<unsigned long long>(serial_ios),
              static_cast<unsigned long long>(critical_path),
              static_cast<double>(speedup_x100) / 100.0);
  if (speedup_x100 < 200) {
    std::fprintf(stderr, "FAIL: critical-path speedup %llu < 200 (x100)\n",
                 static_cast<unsigned long long>(speedup_x100));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "parallel")) return 2;
  const int rc = emjoin::Run();
  const int finish_rc = emjoin::bench::FinishBench();
  return rc != 0 ? rc : finish_rc;
}
