// Experiment E14 (§3): instance optimality of the 2-relation hybrid.
// Claim: the sort-merge/nested-loop hybrid runs in Õ(Σ_a N1|a*N2|a/(MB)
// + N/B) on *every* instance — cheap on sparse instances, matching
// nested loop only when the output is genuinely quadratic.
#include "bench/bench_util.h"
#include "core/pairwise.h"
#include "extmem/sorter.h"
#include "tests/test_util.h"
#include "workload/random_instance.h"

namespace emjoin {
namespace {

// Instance with `heavy` join values carrying `per` tuples on both sides
// plus `light` matching tuples.
std::vector<storage::Relation> SkewInstance(extmem::Device* dev,
                                            TupleCount heavy, TupleCount per,
                                            TupleCount light) {
  std::vector<storage::Tuple> r1, r2;
  Value uid = 0;
  for (Value h = 0; h < heavy; ++h) {
    for (Value i = 0; i < per; ++i) {
      r1.push_back({uid++, h});
      r2.push_back({h, uid++});
    }
  }
  for (Value l = 0; l < light; ++l) {
    r1.push_back({uid++, 1000000 + l});
    r2.push_back({1000000 + l, uid++});
  }
  return {test::MakeRel(dev, {0, 1}, r1), test::MakeRel(dev, {1, 2}, r2)};
}

void Run() {
  bench::Banner("E14 instance-optimal 2-relation join (§3)",
                "paper: Õ(Σ_a N1|a*N2|a/(MB) + N/B) on any instance; the "
                "instance bound interpolates between scan and NL");
  bench::Table table({"heavy", "per_value", "light", "results", "hybrid_io",
                      "instance_bound", "io/bound", "nl_io"});
  const TupleCount m = 128, b = 16;
  for (const auto& [heavy, per, light] :
       std::vector<std::tuple<TupleCount, TupleCount, TupleCount>>{
           {0, 0, 8192},    // pure matching: linear
           {1, 512, 4096},  // one heavy value
           {4, 256, 2048},
           {16, 128, 1024},
           {64, 64, 0},     // everything heavy-ish
           {1, 2048, 0}}) {  // single giant value: quadratic
    extmem::Device dev(m, b);
    const auto rels = SkewInstance(&dev, heavy, per, light);
    core::Assignment a1(core::MakeResultSchema(rels));
    const bench::Measured hybrid = bench::MeasureJoin(&dev, [&](auto emit) {
      core::SortMergeJoin(rels[0], rels[1], &a1, emit);
    });
    extmem::Device dev2(m, b);
    const auto rels2 = SkewInstance(&dev2, heavy, per, light);
    core::Assignment a2(core::MakeResultSchema(rels2));
    const bench::Measured nl = bench::MeasureJoin(&dev2, [&](auto emit) {
      core::BlockNestedLoopJoin(rels2[0], rels2[1], &a2, emit);
    });

    const double n_total =
        static_cast<double>(rels[0].size() + rels[1].size());
    // Õ hides one log factor: charge the sort passes explicitly so the
    // ratio column isolates the constant.
    const double passes =
        static_cast<double>(extmem::MergePassesFor(dev, rels[0].size())) + 1;
    const double instance_bound =
        static_cast<double>(heavy) * per * per / (m * b) +
        2.0 * passes * n_total / b;
    table.AddRow({bench::U(heavy), bench::U(per), bench::U(light),
                  bench::U(hybrid.results), bench::U(hybrid.ios),
                  bench::F(instance_bound),
                  bench::F(hybrid.ios / instance_bound), bench::U(nl.ios)});
  }
  table.Print();
  std::printf(
      "\nShape check: the hybrid's io/bound ratio stays in one constant\n"
      "band from pure-matching to single-giant-value instances, while\n"
      "nested loop pays its fixed N1*N2-shaped cost regardless.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "instance_optimal_2rel")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
