// Experiment T1.7 (Theorem 4): star joins.
// Claim: Algorithm 2 is worst-case optimal on any star; on the Theorem 4
// instance the partial join on the petals forces Õ(Π N_i / (M^{n-1} B)),
// and the measured I/O tracks that bound as petal count and sizes grow.
#include "bench/bench_util.h"
#include "core/acyclic_join.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

void Run() {
  bench::Banner("T1.7 star join T_n on the Theorem 4 instance",
                "paper: Õ(Π_i N_i / (M^{n-1} B) + ΣN/B), optimal for "
                "every star join");
  bench::Table table({"petals", "N_i", "M", "B", "results", "measured_io",
                      "prod/M^(n-1)B", "io/bound"});
  for (const auto& [petals, n, m] :
       std::vector<std::tuple<std::uint32_t, TupleCount, TupleCount>>{
           {2, 512, 64},
           {2, 1024, 64},
           {3, 128, 64},
           {3, 192, 64},
           {3, 128, 32},
           {4, 48, 32},
           {4, 64, 32},
           {5, 24, 16}}) {
    const TupleCount b = 8;
    extmem::Device dev(m, b);
    const auto rels =
        workload::StarWorstCase(&dev, std::vector<TupleCount>(petals, n));
    double bound = 1.0;
    for (std::uint32_t i = 0; i < petals; ++i) {
      bound *= static_cast<double>(n);
    }
    for (std::uint32_t i = 0; i + 1 < petals; ++i) {
      bound /= static_cast<double>(m);
    }
    bound /= static_cast<double>(b);
    bound += static_cast<double>(petals) * n / b;  // linear term
    const bench::Measured meas = bench::MeasureJoin(
        &dev, [&](auto emit) { core::AcyclicJoin(rels, emit); },
        bench::InternSpanName("star p=" + std::to_string(petals)), bound, n);
    table.AddRow({bench::U(petals), bench::U(n), bench::U(m), bench::U(b),
                  bench::U(meas.results), bench::U(meas.ios),
                  bench::F(bound), bench::F(meas.ios / bound)});
  }
  table.Print();
  std::printf(
      "\nShape check: the ratio column stays within one constant band\n"
      "while petals and sizes vary — Π N_i / (M^{n-1} B) is the cost.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "table1_star")) return 2;
  emjoin::Run();
  return emjoin::bench::FinishBench();
}
