// Experiment T1.2-3 (Table 1, rows 2–3): triangle and Loomis–Whitney
// joins, the paper's cyclic points of comparison.
// Claims: the triangle C3 costs Õ(N^{3/2}/(√M B)) on equal sizes [7,12];
// LW_n costs Õ(Π (N_i/M)^{1/(n-1)} · M/B) [6]. Both are far below the
// materializing pairwise plan, whose intermediate can be quadratic.
#include <cmath>
#include <random>

#include "bench/bench_util.h"
#include "core/lw.h"
#include "core/triangle.h"
#include "tests/test_util.h"

namespace emjoin {
namespace {

// Random graph: three copies of a dom x dom random edge set.
std::vector<storage::Relation> RandomTriangle(extmem::Device* dev,
                                              TupleCount n, TupleCount dom,
                                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto edges = [&](storage::AttrId x, storage::AttrId y) {
    std::vector<storage::Tuple> rows;
    for (TupleCount i = 0; i < n; ++i) {
      rows.push_back({rng() % dom, rng() % dom});
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    return test::MakeRel(dev, {x, y}, rows);
  };
  return {edges(0, 1), edges(0, 2), edges(1, 2)};
}

void RunTriangle() {
  bench::Banner("Table 1 row 2: triangle join C3",
                "paper: Õ(N^{3/2}/(√M B)) on equal sizes; the pairwise "
                "baseline pays for its (up to quadratic) intermediate");
  bench::Table table({"N(edges)", "M", "B", "triangles", "partition_io",
                      "bound=N^1.5/sqrt(M)B", "io/bound", "pairwise_io"});
  const TupleCount b = 16;
  for (const auto& [dom, m] : std::vector<std::pair<TupleCount, TupleCount>>{
           {64, 256}, {96, 256}, {128, 256}, {128, 512}, {192, 512}}) {
    const TupleCount target_edges = dom * dom / 4;
    extmem::Device dev(m, b), dev2(m, b);
    const auto rels = RandomTriangle(&dev, target_edges, dom, 17);
    const auto rels2 = RandomTriangle(&dev2, target_edges, dom, 17);
    const TupleCount n = rels[0].size();

    const bench::Measured tri = bench::MeasureJoin(&dev, [&](auto emit) {
      core::TriangleJoin(rels[0], rels[1], rels[2], emit);
    });
    const bench::Measured pw = bench::MeasureJoin(&dev2, [&](auto emit) {
      core::TriangleViaMaterialization(rels2[0], rels2[1], rels2[2], emit);
    });

    const double bound =
        std::pow(static_cast<double>(n), 1.5) / (std::sqrt(m) * b) +
        3.0 * static_cast<double>(n) / b;
    table.AddRow({bench::U(n), bench::U(m), bench::U(b),
                  bench::U(tri.results), bench::U(tri.ios), bench::F(bound),
                  bench::F(tri.ios / bound), bench::U(pw.ios)});
  }
  table.Print();
}

void RunLw() {
  bench::Banner("Table 1 row 3: Loomis–Whitney joins LW_n",
                "paper [6]: Õ((N/M)^{n/(n-1)} · M/B) for equal sizes; "
                "optimality unknown — we verify the upper-bound shape");
  bench::Table table({"n", "N", "M", "results", "measured_io",
                      "(N/M)^{n/(n-1)}*M/B", "io/bound"});
  const TupleCount b = 16;
  for (const auto& [n, dom, m] :
       std::vector<std::tuple<std::size_t, TupleCount, TupleCount>>{
           {3, 64, 256},
           {3, 128, 256},
           {4, 12, 256},
           {4, 16, 256},
           {5, 8, 128}}) {
    extmem::Device dev(m, b);
    std::mt19937_64 rng(n * 100 + dom);
    std::vector<storage::Relation> rels;
    // Density chosen so higher-arity instances still produce results.
    TupleCount tuples = dom * dom / 2;
    if (n >= 4) {
      tuples = 1;
      for (std::size_t j = 0; j + 1 < n; ++j) tuples *= dom;
      tuples /= 3;
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<storage::AttrId> attrs;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) attrs.push_back(static_cast<storage::AttrId>(j));
      }
      std::vector<storage::Tuple> rows;
      for (TupleCount t = 0; t < tuples; ++t) {
        storage::Tuple row;
        for (std::size_t j = 0; j + 1 < n; ++j) row.push_back(rng() % dom);
        rows.push_back(std::move(row));
      }
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      rels.push_back(storage::Relation::FromTuples(
          &dev, storage::Schema(attrs), rows));
    }
    TupleCount nn = 0;
    for (const auto& r : rels) nn = std::max(nn, r.size());

    const bench::Measured meas = bench::MeasureJoin(&dev, [&](auto emit) {
      core::LoomisWhitneyJoin(rels, emit);
    });
    const double exp = static_cast<double>(n) / (n - 1);
    const double bound =
        std::pow(static_cast<double>(nn) / m, exp) * m / b +
        static_cast<double>(n) * nn / b;
    table.AddRow({bench::U(n), bench::U(nn), bench::U(m),
                  bench::U(meas.results), bench::U(meas.ios),
                  bench::F(bound), bench::F(meas.ios / bound)});
  }
  table.Print();
  std::printf(
      "\nShape check: both cyclic joins track their Table 1 bounds with a\n"
      "flat constant; the triangle beats the materializing pairwise plan.\n");
}

}  // namespace
}  // namespace emjoin

int main(int argc, char** argv) {
  if (!emjoin::bench::ParseBenchFlags(&argc, argv, "triangle_lw")) return 2;
  emjoin::RunTriangle();
  emjoin::RunLw();
  return emjoin::bench::FinishBench();
}
